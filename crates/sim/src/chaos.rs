//! Chaos campaigns: randomized fault storms against the self-healing
//! simulator, checked against hard invariants.
//!
//! A [`ChaosCampaign`] is generated deterministically from a seed: a
//! handful of storm events, each naming a link on the walked route of a
//! source/destination pair, a fault behaviour
//! ([`FaultKind`](metro_topo::fault::FaultKind)), and whether the
//! element is repaired once the self-healing layer has masked it. The
//! runner ([`run_campaign`]) drives the network through three phases —
//! clean baseline, storm (faults injected mid-run, traffic hammered
//! through until diagnosis masks them), recovery probes — and enforces
//! the invariants the architecture promises:
//!
//! 1. **Conservation** — no message to a live endpoint is silently lost
//!    or duplicated: every send completes, every completion was
//!    physically delivered with an intact payload, and a message whose
//!    outcome records no failure was delivered *exactly* once. (A
//!    corrupted acknowledgment legitimately forces a retry after a
//!    successful delivery — at-least-once, never silently.)
//! 2. **Convergence** — the masked set grows to a superset of the
//!    truly-faulty links, online, from reply evidence alone
//!    ([`SimConfig::self_heal`]); the injected [`FaultSet`] is consulted
//!    only *here*, by the checker, as the audit oracle.
//! 3. **Recovery** — once every storm link is masked, traffic completes
//!    failure-free at baseline latency (within a small slack), because
//!    masked ports are never selected again.
//!
//! [`run_campaign_paired`] additionally replays the identical campaign
//! on both tick engines and requires bit-identical outcome streams and
//! healed sets — the healing layer lives in shared code, so the
//! engines' cycle-for-cycle equivalence must survive it.

use crate::message::MessageOutcome;
use crate::network::{EngineKind, NetworkSim, SimConfig};
use metro_core::RandomSource;
use metro_harness::Json;
use metro_topo::fault::{FaultKind, FaultSet};
use metro_topo::graph::{LinkId, LinkTarget};
use metro_topo::multibutterfly::{Multibutterfly, MultibutterflySpec};

/// Latency slack (cycles) allowed on recovery probes over the clean
/// baseline's worst observation.
pub const RECOVERY_SLACK: u64 = 32;

/// One storm event: a link on the walked route of `src → dest` fails
/// mid-run with the given behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormEvent {
    /// Source endpoint whose traffic exercises the link.
    pub src: usize,
    /// Destination endpoint of that traffic.
    pub dest: usize,
    /// The link that fails (on a route from `src` to `dest`).
    pub link: LinkId,
    /// How the link misbehaves.
    pub kind: FaultKind,
    /// Whether the link is repaired once masked (the mask must stay —
    /// healing is one-way; re-enabling is a scan-chain operation, not
    /// an online one).
    pub repair: bool,
}

/// A deterministic chaos campaign: topology, storm schedule, and
/// probing parameters, all derived from one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCampaign {
    /// The seed everything derives from (also the simulator seed).
    pub seed: u64,
    /// Network topology under test.
    pub spec: MultibutterflySpec,
    /// The storm schedule, applied one event at a time mid-run.
    pub events: Vec<StormEvent>,
    /// Payload sent on every probe.
    pub payload: Vec<u16>,
    /// Clean probes per pair before the storm (baseline latency).
    pub baseline_probes: usize,
    /// Probes per pair after the storm has been fully masked.
    pub recovery_probes: usize,
    /// Sends allowed per event before giving up on convergence.
    pub max_storm_sends: usize,
    /// Cycle budget for any single probe.
    pub probe_budget: u64,
}

impl ChaosCampaign {
    /// Generates the campaign for `seed` on the given topology: 1–2
    /// storm events on walked routes (distinct routers, inter-router
    /// stages only, so the network always retains an unmasked path),
    /// random fault kinds, random repair decisions.
    ///
    /// # Errors
    ///
    /// Propagates topology validation errors.
    pub fn generate(
        spec: &MultibutterflySpec,
        seed: u64,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let topo = Multibutterfly::build(spec)?;
        let mut rng = RandomSource::new(seed ^ 0xC4A0_55ED);
        let n = topo.endpoints();
        let last = topo.stages() - 1;
        let n_events = 1 + rng.index(2);
        let mut events: Vec<StormEvent> = Vec::new();
        'events: for _ in 0..n_events {
            // Rejection-sample a site on a distinct router so two storms
            // can never sever a whole dilation group between them.
            for _ in 0..32 {
                let src = rng.index(n);
                let mut dest = rng.index(n);
                if dest == src {
                    dest = (dest + 1) % n;
                }
                let stage = rng.index(last.max(1));
                let Some(link) = walk_route(&topo, src, dest, stage, &mut rng) else {
                    continue;
                };
                if events
                    .iter()
                    .any(|e| (e.link.stage, e.link.router) == (link.stage, link.router))
                {
                    continue;
                }
                let xor = 1u16 << rng.index(8);
                let kind = match rng.index(3) {
                    0 => FaultKind::Dead,
                    1 => FaultKind::CorruptData { xor },
                    _ => FaultKind::Intermittent { xor, period: 2 },
                };
                let repair = rng.bit();
                events.push(StormEvent {
                    src,
                    dest,
                    link,
                    kind,
                    repair,
                });
                continue 'events;
            }
        }
        let payload: Vec<u16> = (0..3 + rng.index(6)).map(|_| rng.bits(8) as u16).collect();
        Ok(Self {
            seed,
            spec: spec.clone(),
            events,
            payload,
            baseline_probes: 2,
            recovery_probes: 3,
            max_storm_sends: 200,
            probe_budget: 6_000,
        })
    }
}

/// Walks a concrete route from `src` toward `dest` down to `stage` and
/// returns the link the walk would take out of that stage (a random
/// dilated sibling at every hop).
fn walk_route(
    topo: &Multibutterfly,
    src: usize,
    dest: usize,
    stage: usize,
    rng: &mut RandomSource,
) -> Option<LinkId> {
    let digits = topo.route_digits(dest);
    let (mut r, _) = topo.injection(src, rng.index(topo.endpoint_ports()));
    for (s, &digit) in digits.iter().enumerate().take(stage) {
        let d = topo.stage_spec(s).dilation;
        match topo.link(s, r, digit * d + rng.index(d)) {
            LinkTarget::Router { router, .. } => r = router,
            LinkTarget::Endpoint { .. } => return None,
        }
    }
    let d = topo.stage_spec(stage).dilation;
    Some(LinkId::new(stage, r, digits[stage] * d + rng.index(d)))
}

/// A hard-invariant violation found while running a campaign. Any of
/// these failing is a bug in the routing protocol, the self-healing
/// layer, or an engine divergence — never an acceptable outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosViolation {
    /// A probe to a live endpoint never completed within its budget.
    Lost {
        /// Source endpoint of the lost probe.
        src: usize,
        /// Destination endpoint of the lost probe.
        dest: usize,
        /// Which campaign phase the probe belonged to.
        phase: &'static str,
    },
    /// A completed probe's delivered payload differs from what was sent
    /// (silent corruption past the end-to-end checksum).
    WrongPayload {
        /// Source endpoint.
        src: usize,
        /// Destination endpoint.
        dest: usize,
    },
    /// A failure-free probe was physically delivered other than exactly
    /// once (silent loss or duplication).
    NotExactlyOnce {
        /// Source endpoint.
        src: usize,
        /// Destination endpoint.
        dest: usize,
        /// Physical deliveries observed at the destination.
        deliveries: usize,
    },
    /// The NIC gave up on a message to a live endpoint.
    Abandoned {
        /// Source endpoint.
        src: usize,
        /// Destination endpoint.
        dest: usize,
    },
    /// Diagnosis never masked a truly-faulty link within the send
    /// budget.
    NotMasked {
        /// The faulty link that escaped masking.
        link: LinkId,
        /// Sends spent trying to provoke and diagnose it.
        sends: usize,
    },
    /// A post-masking probe still failed or exceeded the bounded
    /// recovery latency.
    SlowRecovery {
        /// Observed network latency of the probe.
        latency: u64,
        /// The bound it had to meet (baseline worst + slack).
        bound: u64,
        /// Retries the probe recorded (must be 0 after masking).
        retries: usize,
    },
    /// The two tick engines disagreed on the same campaign.
    EngineDivergence {
        /// What diverged.
        detail: String,
    },
}

impl std::fmt::Display for ChaosViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Lost { src, dest, phase } => {
                write!(f, "{phase} probe {src} -> {dest} never completed")
            }
            Self::WrongPayload { src, dest } => {
                write!(f, "probe {src} -> {dest} delivered a corrupted payload")
            }
            Self::NotExactlyOnce {
                src,
                dest,
                deliveries,
            } => write!(
                f,
                "failure-free probe {src} -> {dest} delivered {deliveries} times"
            ),
            Self::Abandoned { src, dest } => {
                write!(
                    f,
                    "message {src} -> {dest} abandoned with the endpoint alive"
                )
            }
            Self::NotMasked { link, sends } => {
                write!(f, "faulty link {link:?} still unmasked after {sends} sends")
            }
            Self::SlowRecovery {
                latency,
                bound,
                retries,
            } => write!(
                f,
                "post-masking probe took {latency} cycles / {retries} retries (bound {bound})"
            ),
            Self::EngineDivergence { detail } => {
                write!(f, "Flat and Reference engines diverged: {detail}")
            }
        }
    }
}

impl std::error::Error for ChaosViolation {}

/// What one campaign run produced (returned only when every invariant
/// held).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// The campaign seed.
    pub seed: u64,
    /// The engine that ran it.
    pub engine: EngineKind,
    /// Storm events the campaign injected.
    pub events: usize,
    /// Total probes sent across all phases.
    pub sends: usize,
    /// Retries summed over every probe.
    pub total_retries: usize,
    /// Worst clean-phase network latency (cycles).
    pub baseline_worst: u64,
    /// Worst post-masking network latency (cycles).
    pub recovery_worst: u64,
    /// Sends needed per event before its mask landed.
    pub storm_sends: Vec<usize>,
    /// Links diagnosis masked (audited ⊇ the injected faults).
    pub masked_links: Vec<LinkId>,
    /// Injection ports masked at endpoints.
    pub masked_injections: Vec<(usize, usize)>,
    /// Telemetry: checksum mismatches routers observed.
    pub checksum_mismatches: u64,
    /// Telemetry: port masks applied to live configs.
    pub masks_applied: u64,
    /// Telemetry: attempts entering the fabric after a mask existed.
    pub retries_after_mask: u64,
    /// The complete outcome stream, for engine-equivalence checks.
    pub outcomes: Vec<MessageOutcome>,
}

impl ChaosReport {
    /// The machine-readable summary (outcome stream elided; two equal
    /// reports render byte-identically).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::from(self.seed)),
            ("engine", Json::from(self.engine.name())),
            ("events", Json::from(self.events)),
            ("sends", Json::from(self.sends)),
            ("total_retries", Json::from(self.total_retries)),
            ("baseline_worst", Json::from(self.baseline_worst)),
            ("recovery_worst", Json::from(self.recovery_worst)),
            (
                "storm_sends",
                Json::arr(self.storm_sends.iter().map(|&s| Json::from(s))),
            ),
            (
                "masked_links",
                Json::arr(self.masked_links.iter().map(|l| {
                    Json::obj([
                        ("stage", Json::from(l.stage)),
                        ("router", Json::from(l.router)),
                        ("port", Json::from(l.port)),
                    ])
                })),
            ),
            (
                "masked_injections",
                Json::arr(self.masked_injections.iter().map(|&(e, p)| {
                    Json::obj([("endpoint", Json::from(e)), ("port", Json::from(p))])
                })),
            ),
            ("checksum_mismatches", Json::from(self.checksum_mismatches)),
            ("masks_applied", Json::from(self.masks_applied)),
            ("retries_after_mask", Json::from(self.retries_after_mask)),
        ])
    }
}

/// One probe: sends, runs until the outcome arrives, and enforces the
/// conservation invariant against the destination's physical delivery
/// log.
fn probe(
    sim: &mut NetworkSim,
    src: usize,
    dest: usize,
    payload: &[u16],
    budget: u64,
    phase: &'static str,
) -> Result<MessageOutcome, ChaosViolation> {
    sim.send(src, dest, payload);
    let deadline = sim.now() + budget;
    while sim.now() < deadline {
        sim.tick();
        let outs = sim.drain_outcomes();
        if outs.is_empty() {
            continue;
        }
        debug_assert_eq!(outs.len(), 1, "probes are strictly sequential");
        let out = outs.into_iter().next().expect("one outcome");
        if !out.status.is_delivered() {
            return Err(ChaosViolation::Abandoned { src, dest });
        }
        let deliveries = sim.endpoint_mut(dest).take_delivered();
        if deliveries.iter().any(|d| d.payload != payload) {
            return Err(ChaosViolation::WrongPayload { src, dest });
        }
        // Failure-free completion must be exactly-once; a recorded
        // failure (e.g. a corrupted acknowledgment after a successful
        // delivery) legitimately retries — at-least-once, not silent.
        if deliveries.len() != 1 && out.failures.is_empty() {
            return Err(ChaosViolation::NotExactlyOnce {
                src,
                dest,
                deliveries: deliveries.len(),
            });
        }
        if deliveries.is_empty() {
            return Err(ChaosViolation::Lost { src, dest, phase });
        }
        return Ok(out);
    }
    Err(ChaosViolation::Lost { src, dest, phase })
}

/// Runs one campaign on the given engine and checks every invariant.
///
/// The injected fault set is used *only* by this checker (to audit that
/// the masked set covers it); the healing layer inside the simulator
/// sees reply evidence alone.
///
/// # Errors
///
/// Returns the first [`ChaosViolation`], or a boxed error for topology
/// failures. Chaos invariants are cycle-exact, so a
/// non-cycle-accurate engine ([`EngineKind::Analytic`]) is rejected
/// with [`crate::engine::NotCycleAccurate`] before any event runs.
pub fn run_campaign(
    campaign: &ChaosCampaign,
    engine: EngineKind,
) -> Result<ChaosReport, Box<dyn std::error::Error>> {
    run_campaign_with_telemetry(campaign, engine).map(|(report, _)| report)
}

/// [`run_campaign`], additionally returning the run's full telemetry
/// snapshot (for `results/<artifact>.telemetry.json` sidecars).
///
/// # Errors
///
/// As [`run_campaign`].
pub fn run_campaign_with_telemetry(
    campaign: &ChaosCampaign,
    engine: EngineKind,
) -> Result<(ChaosReport, metro_telemetry::TelemetrySnapshot), Box<dyn std::error::Error>> {
    run_campaign_sharded(campaign, engine, 1)
}

/// [`run_campaign_with_telemetry`] with an explicit shard count for the
/// Flat engine's partitioned tick ([`SimConfig::shards`]; ignored by
/// the Reference engine). Sharding is pure execution strategy, so the
/// report and snapshot must be bit-identical across shard counts —
/// [`run_campaign_shard_paired`] enforces exactly that.
///
/// # Errors
///
/// As [`run_campaign`].
pub fn run_campaign_sharded(
    campaign: &ChaosCampaign,
    engine: EngineKind,
    shards: usize,
) -> Result<(ChaosReport, metro_telemetry::TelemetrySnapshot), Box<dyn std::error::Error>> {
    let config = SimConfig {
        self_heal: true,
        seed: campaign.seed,
        engine,
        shards,
        endpoint: crate::endpoint::EndpointConfig {
            timeout: 240,
            ..crate::endpoint::EndpointConfig::default()
        },
        // Chaos campaigns run for tens of thousands of cycles; a
        // per-cycle telemetry series would dominate the sidecar.
        // Coarse 64-cycle sampling keeps the artifact readable while
        // the cumulative counters stay exact (they are synced, not
        // sampled).
        telemetry_every: 64,
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&campaign.spec, &config)?;
    let mut outcomes: Vec<MessageOutcome> = Vec::new();
    let mut active = FaultSet::new();

    // Phase 1 — clean baseline: worst-case fault-free latency.
    let mut baseline_worst = 0u64;
    for ev in &campaign.events {
        for _ in 0..campaign.baseline_probes {
            let o = probe(
                &mut sim,
                ev.src,
                ev.dest,
                &campaign.payload,
                campaign.probe_budget,
                "baseline",
            )?;
            baseline_worst = baseline_worst.max(o.network_latency());
            outcomes.push(o);
        }
    }

    // Phase 2 — storm: inject each fault mid-run, hammer its route
    // until the evidence-driven mask lands.
    let mut storm_sends = Vec::new();
    for ev in &campaign.events {
        active.break_link(ev.link, ev.kind);
        sim.apply_faults(active.clone());
        let mut sends = 0usize;
        while !sim.healed_links().contains(&ev.link) {
            if sends >= campaign.max_storm_sends {
                return Err(Box::new(ChaosViolation::NotMasked {
                    link: ev.link,
                    sends,
                }));
            }
            let o = probe(
                &mut sim,
                ev.src,
                ev.dest,
                &campaign.payload,
                campaign.probe_budget,
                "storm",
            )?;
            outcomes.push(o);
            sends += 1;
        }
        storm_sends.push(sends);
        if ev.repair {
            active.repair_link(ev.link);
            sim.apply_faults(active.clone());
        }
    }

    // Convergence audit: the masked set must cover every link that is
    // (or was) truly faulty — the only place the oracle is consulted.
    for ev in &campaign.events {
        if !sim.healed_links().contains(&ev.link) {
            return Err(Box::new(ChaosViolation::NotMasked {
                link: ev.link,
                sends: 0,
            }));
        }
    }

    // Phase 3 — recovery: masked ports are never selected again, so
    // probes complete failure-free at baseline latency.
    let bound = baseline_worst + RECOVERY_SLACK;
    let mut recovery_worst = 0u64;
    for ev in &campaign.events {
        for _ in 0..campaign.recovery_probes {
            let o = probe(
                &mut sim,
                ev.src,
                ev.dest,
                &campaign.payload,
                campaign.probe_budget,
                "recovery",
            )?;
            if o.retries != 0 || o.network_latency() > bound {
                return Err(Box::new(ChaosViolation::SlowRecovery {
                    latency: o.network_latency(),
                    bound,
                    retries: o.retries,
                }));
            }
            recovery_worst = recovery_worst.max(o.network_latency());
            outcomes.push(o);
        }
    }

    let snap = sim.telemetry_snapshot("chaos");
    use metro_telemetry::RouterCounter;
    let report = ChaosReport {
        seed: campaign.seed,
        engine,
        events: campaign.events.len(),
        sends: outcomes.len(),
        total_retries: outcomes.iter().map(|o| o.retries).sum(),
        baseline_worst,
        recovery_worst,
        storm_sends,
        masked_links: sim.healed_links().to_vec(),
        masked_injections: sim.healed_injections().to_vec(),
        checksum_mismatches: snap.counters.total(RouterCounter::ChecksumMismatches),
        masks_applied: snap.counters.total(RouterCounter::MasksApplied),
        retries_after_mask: snap.counters.total(RouterCounter::RetriesAfterMask),
        outcomes,
    };
    Ok((report, snap))
}

/// Runs one campaign on *both* engines and requires bit-identical
/// outcome streams and healed sets. Returns the Flat report.
///
/// # Errors
///
/// Returns the first violation on either engine, or
/// [`ChaosViolation::EngineDivergence`] when the runs disagree.
pub fn run_campaign_paired(
    campaign: &ChaosCampaign,
) -> Result<ChaosReport, Box<dyn std::error::Error>> {
    let flat = run_campaign(campaign, EngineKind::Flat)?;
    let reference = run_campaign(campaign, EngineKind::Reference)?;
    if flat.outcomes != reference.outcomes {
        return Err(Box::new(ChaosViolation::EngineDivergence {
            detail: format!(
                "outcome streams differ ({} vs {} outcomes)",
                flat.outcomes.len(),
                reference.outcomes.len()
            ),
        }));
    }
    if flat.masked_links != reference.masked_links
        || flat.masked_injections != reference.masked_injections
    {
        return Err(Box::new(ChaosViolation::EngineDivergence {
            detail: format!(
                "healed sets differ ({:?} vs {:?})",
                flat.masked_links, reference.masked_links
            ),
        }));
    }
    Ok(flat)
}

/// Runs one campaign on the Flat engine twice — single-threaded and
/// sharded into `shards` shards — and requires bit-identical outcome
/// streams, healed sets, and telemetry snapshots. The chaos runner
/// exercises mid-run fault injection, self-healing masks, and
/// sequential probing, so this is the harshest shard-identity check in
/// the suite. Returns the single-threaded report.
///
/// # Errors
///
/// Returns the first violation on either run, or
/// [`ChaosViolation::EngineDivergence`] when the runs disagree.
pub fn run_campaign_shard_paired(
    campaign: &ChaosCampaign,
    shards: usize,
) -> Result<ChaosReport, Box<dyn std::error::Error>> {
    let (single, snap_single) = run_campaign_sharded(campaign, EngineKind::Flat, 1)?;
    let (sharded, snap_sharded) = run_campaign_sharded(campaign, EngineKind::Flat, shards)?;
    if single.outcomes != sharded.outcomes {
        return Err(Box::new(ChaosViolation::EngineDivergence {
            detail: format!(
                "outcome streams differ between shards=1 and shards={shards} ({} vs {} outcomes)",
                single.outcomes.len(),
                sharded.outcomes.len()
            ),
        }));
    }
    if single.masked_links != sharded.masked_links
        || single.masked_injections != sharded.masked_injections
    {
        return Err(Box::new(ChaosViolation::EngineDivergence {
            detail: format!(
                "healed sets differ between shards=1 and shards={shards} ({:?} vs {:?})",
                single.masked_links, sharded.masked_links
            ),
        }));
    }
    if snap_single.to_json() != snap_sharded.to_json() {
        return Err(Box::new(ChaosViolation::EngineDivergence {
            detail: format!("telemetry snapshots differ between shards=1 and shards={shards}"),
        }));
    }
    Ok(single)
}

/// Runs `count` generated campaigns (seeds `base_seed + k`) on both
/// engines and returns their reports.
///
/// # Errors
///
/// Returns the first violation, tagged with the offending seed.
pub fn chaos_storm(
    spec: &MultibutterflySpec,
    base_seed: u64,
    count: u64,
) -> Result<Vec<ChaosReport>, Box<dyn std::error::Error>> {
    let mut reports = Vec::new();
    for k in 0..count {
        let seed = base_seed.wrapping_add(k);
        let campaign = ChaosCampaign::generate(spec, seed)?;
        let report =
            run_campaign_paired(&campaign).map_err(|e| format!("campaign seed {seed:#x}: {e}"))?;
        reports.push(report);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_generation_is_deterministic() {
        let spec = MultibutterflySpec::figure1();
        let a = ChaosCampaign::generate(&spec, 7).unwrap();
        let b = ChaosCampaign::generate(&spec, 7).unwrap();
        assert_eq!(a, b);
        assert!(!a.events.is_empty());
        let c = ChaosCampaign::generate(&spec, 8).unwrap();
        assert_ne!(a, c, "different seeds must differ somewhere");
    }

    #[test]
    fn the_analytic_engine_is_rejected_with_a_typed_error() {
        let spec = MultibutterflySpec::figure1();
        let campaign = ChaosCampaign::generate(&spec, 7).unwrap();
        let err = run_campaign(&campaign, EngineKind::Analytic).unwrap_err();
        let typed = err
            .downcast_ref::<crate::engine::NotCycleAccurate>()
            .expect("NotCycleAccurate, not a panic or stringly error");
        assert_eq!(typed.engine, EngineKind::Analytic);
    }

    #[test]
    fn generated_events_sit_on_distinct_inter_router_links() {
        let spec = MultibutterflySpec::figure1();
        for seed in 0..12 {
            let c = ChaosCampaign::generate(&spec, seed).unwrap();
            let last = 2; // figure1 has 3 stages; stage 2 links deliver.
            for (i, e) in c.events.iter().enumerate() {
                assert!(e.link.stage < last, "seed {seed}: delivery link faulted");
                for other in &c.events[..i] {
                    assert_ne!(
                        (e.link.stage, e.link.router),
                        (other.link.stage, other.link.router),
                        "seed {seed}: two events share a router"
                    );
                }
            }
        }
    }

    #[test]
    fn a_campaign_heals_and_recovers_on_the_flat_engine() {
        let spec = MultibutterflySpec::figure1();
        let campaign = ChaosCampaign::generate(&spec, 3).unwrap();
        let report = run_campaign(&campaign, EngineKind::Flat).expect("invariants hold");
        assert_eq!(report.events, campaign.events.len());
        for ev in &campaign.events {
            assert!(report.masked_links.contains(&ev.link));
        }
        assert!(report.masks_applied >= 2 * report.events as u64);
        assert!(report.recovery_worst <= report.baseline_worst + RECOVERY_SLACK);
    }

    #[test]
    fn a_campaign_is_engine_equivalent() {
        let spec = MultibutterflySpec::figure1();
        let campaign = ChaosCampaign::generate(&spec, 11).unwrap();
        run_campaign_paired(&campaign).expect("Flat == Reference under chaos");
    }

    #[test]
    fn a_campaign_is_shard_equivalent() {
        let spec = MultibutterflySpec::figure1();
        let campaign = ChaosCampaign::generate(&spec, 11).unwrap();
        run_campaign_shard_paired(&campaign, 4).expect("shards=4 == shards=1 under chaos");
    }

    #[test]
    fn seed_0x57b0_checksum_aliasing_regression() {
        // This campaign injects `CorruptData { xor: 0x10 }` on a link
        // whose probe payload flips bit 4 in balanced directions — a
        // pattern the old Fletcher-16 end-to-end checksum could not
        // see (the deltas cancel mod 255), so the corrupted payload
        // was acknowledged and delivered silently. The CRC-16 stream
        // checksum detects it, the probe retries, and every invariant
        // holds on both engines.
        let spec = MultibutterflySpec::figure1();
        let campaign = ChaosCampaign::generate(&spec, 0x57b0).unwrap();
        assert!(campaign
            .events
            .iter()
            .any(|e| matches!(e.kind, FaultKind::CorruptData { xor: 0x10 })));
        run_campaign_paired(&campaign).expect("seed 0x57b0 must not deliver silent corruption");
    }

    #[test]
    fn chaos_storm_sweeps_seeds() {
        let spec = MultibutterflySpec::figure1();
        let reports = chaos_storm(&spec, 0x57AB, 2).expect("all campaigns hold");
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.sends > 0);
            assert!(!r.masked_links.is_empty());
        }
    }

    #[test]
    fn report_json_is_deterministic() {
        let spec = MultibutterflySpec::figure1();
        let campaign = ChaosCampaign::generate(&spec, 3).unwrap();
        let a = run_campaign(&campaign, EngineKind::Flat).unwrap().to_json();
        let b = run_campaign(&campaign, EngineKind::Flat).unwrap().to_json();
        assert_eq!(a.render(), b.render());
        assert_eq!(Json::parse(&a.render()).unwrap(), a);
    }
}
