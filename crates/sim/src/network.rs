//! The assembled, tickable network.
//!
//! [`NetworkSim`] instantiates one [`metro_core::Router`] per topology
//! position, one [`crate::wire::Wire`] per port-level link, and
//! one [`crate::endpoint::Endpoint`] per network endpoint, and
//! advances everything synchronously from a central clock — pipelined
//! circuit switching exactly as the paper's §3 describes. The
//! per-cycle dataflow itself lives behind the sealed
//! [`Engine`](crate::engine::Engine) seam ([`crate::engine`]); this
//! module owns orchestration only: construction, workload injection,
//! the clock, telemetry sync, outcome harvest, and fault application.
//! The self-healing loop is a sibling orchestration concern in
//! [`crate::healing`].
//!
//! Components are Moore machines with respect to the data lanes (their
//! outputs depend on registered state), so the per-cycle order —
//! endpoints, routers, then wires — is free of combinational races; the
//! BCB, which *is* combinational in hardware, gains at most one cycle of
//! latency, which only makes fast reclamation marginally slower than
//! silicon (conservative).

use crate::endpoint::{Endpoint, EndpointConfig};
use crate::engine::flat::FlatEngine;
use crate::engine::reference::ReferenceEngine;
use crate::engine::{boundary_delay, Engine, NotCycleAccurate, StepCtx};
use crate::message::MessageOutcome;
use crate::stats::NetworkStats;
use metro_core::header::HeaderPlan;
use metro_core::{
    ArchParams, RandomSource, Router, RouterConfig, SelectionPolicy, StreamChecksum, Word,
};
use metro_telemetry::{StateError, StateReader, StateWriter, TelemetryRegistry, TelemetrySnapshot};
use metro_topo::fault::{FaultKind, FaultSet};
use metro_topo::graph::LinkId;
use metro_topo::multibutterfly::{Multibutterfly, MultibutterflySpec};

pub use crate::engine::EngineKind;

/// Simulator configuration: the implementation parameters shared by
/// every router in the network plus protocol knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Channel width `w` in bits.
    pub width: usize,
    /// Header words consumed per router, `hw` (0 = RN1-style bit
    /// consumption with swallow).
    pub header_words: usize,
    /// Data pipestages inside each router, `dp`.
    pub pipestages: usize,
    /// Pipeline delay of every inter-component wire (the uniform
    /// variable-turn-delay setting; 0 = single pipeline stage per
    /// routing stage, the RN1/Figure 3 operating point).
    pub wire_delay: usize,
    /// Per-boundary wire delays overriding `wire_delay`: entry 0 is the
    /// injection boundary (endpoints → stage 0), entry `s + 1` the
    /// boundary out of stage `s` (the last entry is the delivery
    /// boundary). "It is generally not possible or desirable to make
    /// all the connections between routers equally long … closer
    /// routers should be able to take advantage" (paper §5.1, Variable
    /// Turn Delay). Must have `stages + 1` entries when present.
    pub stage_wire_delays: Option<Vec<usize>>,
    /// Whether forward ports use fast path reclamation (BCB) on
    /// blocking; `false` holds blocked connections for a detailed
    /// turn-time reply (paper §5.1).
    pub fast_reclaim: bool,
    /// Backward-port selection policy (the architecture mandates
    /// random; others are for ablation).
    pub selection: SelectionPolicy,
    /// Endpoint NIC configuration.
    pub endpoint: EndpointConfig,
    /// Master seed: router randomness, endpoint port choice, backoff.
    pub seed: u64,
    /// Which engine drives the fabric. The cycle engines ([`Flat`] and
    /// [`Reference`]) are cycle-for-cycle equivalent (see the
    /// golden-equivalence tests); [`EngineKind::Flat`] is simply
    /// faster. [`EngineKind::Analytic`] is not a cycle engine and is
    /// rejected by [`NetworkSim::new`] — scenario replay dispatches it
    /// to the estimator instead.
    ///
    /// [`Flat`]: EngineKind::Flat
    /// [`Reference`]: EngineKind::Reference
    pub engine: EngineKind,
    /// Cycles between telemetry syncs (clamped to ≥ 1): how often the
    /// registry copies router counters, feeds the trace, and extends
    /// the time series. 1 = every cycle (exact trace stamps); larger
    /// values coarsen stamps and series resolution for a cheaper
    /// steady-state tick.
    pub telemetry_every: u64,
    /// Closes the fault loop online (paper §5.3): endpoints hand every
    /// failed attempt's reply evidence to the network, which localizes
    /// corruption through the transit checksums
    /// (`metro-scan::diagnosis`), confirms silent path losses with a
    /// behavioral boundary-scan wire sweep, and disables the implicated
    /// ports in the live router configurations — no oracle access to
    /// the injected fault set. Off by default: evidence capture clones
    /// a record per failed attempt, which congested fault-free runs
    /// should not pay for.
    pub self_heal: bool,
    /// Tick-parallelism shard count for the [`EngineKind::Flat`]
    /// engine. `1` (the default) keeps the classic single-threaded
    /// tick; `N > 1` partitions routers, endpoints, and wires into `N`
    /// weight-balanced shards driven through per-phase barriers on a
    /// persistent worker pool; `0` asks for the host's available
    /// parallelism. The effective count is capped at the router count.
    /// Sharding is a pure execution strategy: every shard count
    /// produces **bit-identical** results (outcome streams, telemetry,
    /// traces) because components only read last-tick state and write
    /// disjoint next-tick slots. Ignored by the Reference engine.
    pub shards: usize,
}

impl Default for SimConfig {
    /// The Figure 3 operating point: 8-bit channels, `hw = 0`,
    /// `dp = 1`, single pipeline stage per routing stage, fast
    /// reclamation on.
    fn default() -> Self {
        Self {
            width: 8,
            header_words: 0,
            pipestages: 1,
            wire_delay: 0,
            stage_wire_delays: None,
            fast_reclaim: true,
            selection: SelectionPolicy::Random,
            endpoint: EndpointConfig::default(),
            seed: 0xC0FFEE,
            engine: EngineKind::default(),
            telemetry_every: 1,
            self_heal: false,
            shards: 1,
        }
    }
}

/// A complete METRO network under simulation.
#[derive(Debug, Clone)]
pub struct NetworkSim {
    pub(crate) topo: Multibutterfly,
    pub(crate) config: SimConfig,
    pub(crate) plan: HeaderPlan,
    pub(crate) routers: Vec<Vec<Router>>,
    pub(crate) endpoints: Vec<Endpoint>,
    pub(crate) engine: Box<dyn Engine>,
    pub(crate) faults: FaultSet,
    now: u64,
    outcomes: Vec<MessageOutcome>,
    stats: NetworkStats,
    stats_from: u64,
    trace: Option<crate::trace::TraceLog>,
    /// The telemetry spine: rebased per-router counters, per-sync
    /// deltas (the trace's input), and decimated network-total series.
    registry: TelemetryRegistry,
    /// Links the self-healing layer has masked (both port ends
    /// disabled), diagnosis-driven — never read from the fault set.
    pub(crate) healed_links: Vec<LinkId>,
    /// Injection ports the self-healing layer has masked at their
    /// endpoints, as `(endpoint, output_port)`.
    pub(crate) healed_injections: Vec<(usize, usize)>,
}

impl NetworkSim {
    /// Builds a simulation of the network `spec` with implementation
    /// parameters `config`.
    ///
    /// # Errors
    ///
    /// Propagates topology validation errors; router parameter errors
    /// surface as [`metro_core::ParamError`] converted to a topology
    /// boundary error message via panic-free construction. A
    /// non-cycle-accurate engine ([`EngineKind::Analytic`]) is
    /// rejected with [`NotCycleAccurate`] — there is no network to
    /// tick; use [`crate::engine::analytic::estimate_scenario`].
    pub fn new(
        spec: &MultibutterflySpec,
        config: &SimConfig,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        if !config.engine.is_cycle_accurate() {
            return Err(Box::new(NotCycleAccurate {
                engine: config.engine,
            }));
        }
        let topo = Multibutterfly::build(spec)?;
        if let Some(d) = &config.stage_wire_delays {
            assert_eq!(
                d.len(),
                topo.stages() + 1,
                "stage_wire_delays must cover every boundary (stages + 1)"
            );
        }
        let bd = |b: usize| boundary_delay(config, b);
        let plan = topo.header_plan(config.width, config.header_words);
        let master = RandomSource::new(config.seed);

        let mut routers = Vec::with_capacity(topo.stages());
        for s in 0..topo.stages() {
            let st = topo.stage_spec(s);
            let params = ArchParams::new(
                st.forward_ports,
                st.backward_ports,
                config.width,
                st.dilation,
                config.header_words,
                config.pipestages,
            )?
            .with_max_turn_delay(bd(s).max(bd(s + 1)).max(7))?;
            // Program every port's variable turn delay with the wire's
            // pipeline depth (paper §5.1) — the routers use it to size
            // the post-reversal settle window.
            let mut builder = RouterConfig::new(&params)
                .with_dilation(st.dilation)
                .with_swallow_all(config.header_words == 0 && plan.swallow()[s])
                .with_fast_reclaim_all(config.fast_reclaim);
            for f in 0..st.forward_ports {
                builder = builder.with_forward_turn_delay(f, bd(s));
            }
            for b in 0..st.backward_ports {
                builder = builder.with_backward_turn_delay(b, bd(s + 1));
            }
            let router_config = builder.build()?;
            let mut stage = Vec::with_capacity(topo.routers_in_stage(s));
            for r in 0..topo.routers_in_stage(s) {
                let mut seed_src = master.derive((s as u64) << 32 | r as u64);
                let seed = seed_src.bits(64);
                stage.push(Router::with_policy(
                    params,
                    router_config.clone(),
                    seed,
                    config.selection,
                )?);
            }
            routers.push(stage);
        }

        let ep = topo.endpoint_ports();
        let endpoints = (0..topo.endpoints())
            .map(|e| {
                let mut seed_src = master.derive(0xEE00_0000 + e as u64);
                let mut endpoint = Endpoint::new(e, ep, ep, config.endpoint, seed_src.bits(64));
                endpoint.set_collect_evidence(config.self_heal);
                endpoint
            })
            .collect();

        let engine: Box<dyn Engine> = match config.engine {
            EngineKind::Flat => Box::new(FlatEngine::build(&topo, config)),
            EngineKind::Reference => Box::new(ReferenceEngine::build(&topo, config)),
            EngineKind::Analytic => unreachable!("rejected above"),
        };

        let routers_per_stage: Vec<usize> = (0..topo.stages())
            .map(|s| topo.routers_in_stage(s))
            .collect();
        Ok(Self {
            topo,
            config: config.clone(),
            plan,
            routers,
            endpoints,
            engine,
            faults: FaultSet::new(),
            now: 0,
            outcomes: Vec::new(),
            stats: NetworkStats::new(),
            stats_from: 0,
            trace: None,
            registry: TelemetryRegistry::new(&routers_per_stage, config.telemetry_every),
            healed_links: Vec::new(),
            healed_injections: Vec::new(),
        })
    }

    /// Enables cycle-level event tracing, retaining at most `capacity`
    /// records (0 = unbounded). See [`crate::trace::TraceLog`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::trace::TraceLog::new(capacity));
    }

    /// Sets how often (in cycles) the telemetry registry syncs router
    /// counters, feeds the trace, and extends the time series (default
    /// 1 = every cycle; 0 is clamped to 1). Counter increments between
    /// syncs are never lost — the registry diffs cumulative counters —
    /// but trace stamps and series buckets coarsen to the sync grid,
    /// trading resolution for a cheaper steady-state tick.
    pub fn set_telemetry_interval(&mut self, every: u64) {
        self.registry.set_interval(every);
    }

    /// Historical name for [`NetworkSim::set_telemetry_interval`]: the
    /// trace consumes registry deltas, so the two share one interval.
    pub fn set_trace_interval(&mut self, every: u64) {
        self.set_telemetry_interval(every);
    }

    /// The telemetry registry: rebased per-router counters, last-sync
    /// deltas, and decimated per-counter series.
    #[must_use]
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.registry
    }

    /// The trace log, if tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&crate::trace::TraceLog> {
        self.trace.as_ref()
    }

    /// Mutable trace access (for clearing between phases).
    pub fn trace_mut(&mut self) -> Option<&mut crate::trace::TraceLog> {
        self.trace.as_mut()
    }

    /// The topology under simulation.
    #[must_use]
    pub fn topology(&self) -> &Multibutterfly {
        &self.topo
    }

    /// The simulator configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The current clock cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The header plan messages in this network use.
    #[must_use]
    pub fn header_plan(&self) -> &HeaderPlan {
        &self.plan
    }

    /// Builds the complete word stream for a message: header + payload
    /// (masked to `w` bits) + end-to-end checksum + TURN.
    #[must_use]
    pub fn stream_for(&self, dest: usize, payload: &[u16]) -> Vec<Word> {
        let mask = if self.config.width >= 16 {
            u16::MAX
        } else {
            (1u16 << self.config.width) - 1
        };
        let digits = self.topo.route_digits(dest);
        let mut stream: Vec<Word> = self
            .plan
            .pack(&digits)
            .into_iter()
            .map(Word::Data)
            .collect();
        let mut ck = StreamChecksum::new();
        for &v in payload {
            let v = v & mask;
            ck.absorb_value(v);
            stream.push(Word::Data(v));
        }
        stream.push(Word::Checksum(ck.value()));
        stream.push(Word::Turn);
        stream
    }

    /// Builds a continuation segment (no header — the circuit is
    /// already established): payload + checksum + TURN.
    #[must_use]
    pub fn segment_for(&self, payload: &[u16]) -> Vec<Word> {
        let mask = if self.config.width >= 16 {
            u16::MAX
        } else {
            (1u16 << self.config.width) - 1
        };
        let mut ck = StreamChecksum::new();
        let mut stream = Vec::with_capacity(payload.len() + 2);
        for &v in payload {
            let v = v & mask;
            ck.absorb_value(v);
            stream.push(Word::Data(v));
        }
        stream.push(Word::Checksum(ck.value()));
        stream.push(Word::Turn);
        stream
    }

    /// Queues a multi-round conversation from `src` to `dest`: each
    /// entry of `payloads` travels as one segment over a *single*
    /// circuit, with the connection reversing between segments (the
    /// paper's "any number of data transmission reversals", §5.1).
    /// The destination endpoints must be configured with
    /// [`crate::endpoint::ReplyPolicy::Conversation`].
    ///
    /// # Panics
    ///
    /// Panics if `payloads` is empty or an endpoint is out of range.
    pub fn send_conversation(&mut self, src: usize, dest: usize, payloads: &[&[u16]]) {
        assert!(!payloads.is_empty(), "a conversation needs segments");
        assert!(src < self.topo.endpoints() && dest < self.topo.endpoints());
        let mut segments = Vec::with_capacity(payloads.len());
        segments.push(self.stream_for(dest, payloads[0]));
        for p in &payloads[1..] {
            segments.push(self.segment_for(p));
        }
        let payload_words = payloads.iter().map(|p| p.len()).sum();
        self.endpoints[src].enqueue_conversation(dest, segments, payload_words, self.now);
    }

    /// Queues a message from `src` to `dest` with the given payload.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dest` is out of range.
    pub fn send(&mut self, src: usize, dest: usize, payload: &[u16]) {
        assert!(src < self.topo.endpoints() && dest < self.topo.endpoints());
        let stream = self.stream_for(dest, payload);
        self.endpoints[src].enqueue(dest, payload.to_vec(), stream, self.now);
    }

    /// Sends one message and runs the clock until it completes (or
    /// `max_cycles` elapse). Returns the outcome with
    /// `payload_delivered` filled in from the destination's log.
    pub fn send_and_wait(
        &mut self,
        src: usize,
        dest: usize,
        payload: &[u16],
        max_cycles: u64,
    ) -> Option<MessageOutcome> {
        self.send(src, dest, payload);
        let deadline = self.now + max_cycles;
        while self.now < deadline {
            self.tick();
            if let Some(pos) = self
                .outcomes
                .iter()
                .position(|o| o.src == src && o.dest == dest)
            {
                let mut outcome = self.outcomes.remove(pos);
                if let Some(d) = self.endpoints[dest]
                    .take_delivered()
                    .into_iter()
                    .next_back()
                {
                    outcome.payload_delivered = d.payload;
                }
                return Some(outcome);
            }
        }
        None
    }

    /// Advances the whole network one clock cycle: the engine steps
    /// the dataflow, then the orchestrator syncs telemetry and
    /// harvests outcomes.
    pub fn tick(&mut self) {
        self.engine.step(StepCtx {
            now: self.now,
            topo: &self.topo,
            faults: &self.faults,
            routers: &mut self.routers,
            endpoints: &mut self.endpoints,
        });
        self.after_tick();
    }

    /// The effective shard count the tick runs with (1 when the
    /// single-threaded path — either engine — is active).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.engine.shards()
    }

    /// Sync telemetry, then harvest completed transactions (shared by
    /// both engines).
    fn after_tick(&mut self) {
        let every = self.registry.interval();
        if every <= 1 || self.now.is_multiple_of(every) {
            for (s, stage) in self.routers.iter().enumerate() {
                for (r, router) in stage.iter().enumerate() {
                    self.registry.sync_slot(s, r, router.counters());
                }
            }
            self.registry.finish_sync();
            if let Some(trace) = &mut self.trace {
                trace.observe(self.now, self.registry.deltas());
            }
        }
        self.now += 1;
        for e in 0..self.endpoints.len() {
            if !self.endpoints[e].has_outcomes() {
                continue;
            }
            for o in self.endpoints[e].take_completed() {
                if let Some(trace) = &mut self.trace {
                    trace.record_completion(self.now, o.src, o.dest, o.retries);
                }
                if o.requested_at >= self.stats_from {
                    let payload = o.payload_delivered.len().max(self.payload_words_hint(&o));
                    self.stats.record(&o, payload);
                }
                self.outcomes.push(o);
            }
            for o in self.endpoints[e].take_abandoned() {
                self.stats.record_abandoned(&o);
                self.outcomes.push(o);
            }
        }
        if self.config.self_heal {
            self.process_evidence();
        }
    }

    fn payload_words_hint(&self, o: &MessageOutcome) -> usize {
        // The NIC records the transmitted payload length in the
        // outcome, so throughput accounting holds even when the
        // destination-side capture (`payload_delivered`) is skipped.
        o.payload_words
    }

    /// Runs the clock for `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Drains all completed (and abandoned) outcomes harvested so far.
    pub fn drain_outcomes(&mut self) -> Vec<MessageOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Whether every endpoint is idle (no queued or in-flight
    /// messages).
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.endpoints.iter().all(|e| !e.is_busy())
    }

    /// Whether the fabric itself holds **zero** state: every router
    /// port idle with no backward port allocated, every wire quiet.
    /// This is the paper's §2 "stateless network" property — "no
    /// messages ever exist solely in the network", so a gang-scheduled
    /// machine can context-switch without snapshotting network state.
    #[must_use]
    pub fn fabric_idle(&self) -> bool {
        let routers_idle = self.routers.iter().enumerate().all(|(s, stage)| {
            stage.iter().enumerate().all(|(r, router)| {
                let ports_idle = (0..self.topo.stage_spec(s).forward_ports)
                    .all(|f| router.port_status(f) == metro_core::PortStatus::Idle);
                let _ = r;
                ports_idle && router.in_use_vector().iter().all(|&u| !u)
            })
        });
        routers_idle && self.engine.wires_quiet()
    }

    /// Direct access to an endpoint (for workload injection and
    /// delivery inspection).
    pub fn endpoint_mut(&mut self, e: usize) -> &mut Endpoint {
        &mut self.endpoints[e]
    }

    /// Direct access to a router (for scan operations and fault
    /// experiments).
    pub fn router_mut(&mut self, stage: usize, index: usize) -> &mut Router {
        &mut self.routers[stage][index]
    }

    /// Shared access to a router.
    #[must_use]
    pub fn router(&self, stage: usize, index: usize) -> &Router {
        &self.routers[stage][index]
    }

    /// Applies a fault set: dead routers stop switching, faulty links
    /// die or corrupt, dead endpoints fall silent. Takes effect from
    /// the next tick (dynamic fault injection).
    pub fn apply_faults(&mut self, faults: FaultSet) {
        for e in 0..self.endpoints.len() {
            self.endpoints[e].set_dead(faults.endpoint_dead(e));
        }
        self.faults = faults;
        self.engine.apply_faults(&self.topo, &self.faults);
    }

    /// The active fault set.
    #[must_use]
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Statistics accumulated since the last [`NetworkSim::reset_stats`].
    #[must_use]
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Mutable statistics access (percentile queries sort lazily).
    pub fn stats_mut(&mut self) -> &mut NetworkStats {
        &mut self.stats
    }

    /// Clears statistics; only messages *requested* from now on are
    /// counted (warmup exclusion). The telemetry registry is rebased so
    /// every slot reads zero — subsequent syncs measure post-reset
    /// activity only — while the routers keep their cumulative
    /// counters.
    pub fn reset_stats(&mut self) {
        self.stats = NetworkStats::new();
        self.stats_from = self.now;
        self.registry.rebase();
    }

    /// Sums a per-router statistic over every router in the network.
    #[must_use]
    pub fn router_stat_total(&self, f: impl Fn(&metro_core::router::RouterStats) -> u64) -> u64 {
        self.routers.iter().flatten().map(|r| f(&r.stats())).sum()
    }

    /// Appends the complete mutable simulation state to a checkpoint
    /// stream: the clock, the active fault set, healing decisions,
    /// every router and endpoint, the engine's channel arenas and
    /// wires, accumulated statistics, unharvested outcomes, and the
    /// telemetry registry. Construction-derived state (topology, header
    /// plan, configuration) and the optional trace log are not written
    /// — a resumed run rebuilds the former from the scenario and starts
    /// a fresh trace.
    ///
    /// A checkpoint taken at a tick boundary is shard-count-agnostic:
    /// engines write every next-tick slot every cycle, so none of the
    /// shard staging state is live between ticks.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.section("network");
        w.u64(self.now);
        w.u64(self.stats_from);
        save_fault_set(w, &self.faults);
        w.usize(self.healed_links.len());
        for l in &self.healed_links {
            w.usize(l.stage);
            w.usize(l.router);
            w.usize(l.port);
        }
        w.usize(self.healed_injections.len());
        for &(e, p) in &self.healed_injections {
            w.usize(e);
            w.usize(p);
        }
        w.usize(self.routers.len());
        for stage in &self.routers {
            w.usize(stage.len());
            for router in stage {
                router.save_state(w);
            }
        }
        w.usize(self.endpoints.len());
        for endpoint in &self.endpoints {
            endpoint.save_state(w);
        }
        self.engine.save_state(w);
        self.stats.save_state(w);
        w.usize(self.outcomes.len());
        for o in &self.outcomes {
            o.save_state(w);
        }
        self.registry.save_state(w);
    }

    /// Overwrites the mutable simulation state from a checkpoint stream
    /// ([`NetworkSim::save_state`]'s inverse). The simulation must have
    /// been freshly built from the same scenario (topology, config, and
    /// seed), in any shard configuration. The saved fault set is
    /// re-applied through [`NetworkSim::apply_faults`] *before* the
    /// component state is overwritten, so engine fault tables and
    /// endpoint dead flags are consistent by the time wire contents
    /// land.
    ///
    /// # Errors
    ///
    /// [`StateError`] on any shape mismatch (the checkpoint was taken
    /// on a different topology or configuration) or a corrupt stream.
    pub fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let bad = |detail: String| StateError::BadValue {
            section: String::from("network"),
            detail,
        };
        r.section("network")?;
        self.now = r.u64()?;
        self.stats_from = r.u64()?;
        let faults = restore_fault_set(r)?;
        self.apply_faults(faults);
        let n = r.usize()?;
        self.healed_links = (0..n)
            .map(|_| Ok(LinkId::new(r.usize()?, r.usize()?, r.usize()?)))
            .collect::<Result<_, StateError>>()?;
        let n = r.usize()?;
        self.healed_injections = (0..n)
            .map(|_| Ok((r.usize()?, r.usize()?)))
            .collect::<Result<_, StateError>>()?;
        let n = r.usize()?;
        if n != self.routers.len() {
            return Err(bad(format!(
                "saved {n} router stages, network has {}",
                self.routers.len()
            )));
        }
        for stage in &mut self.routers {
            let n = r.usize()?;
            if n != stage.len() {
                return Err(bad(format!(
                    "saved {n} routers in a stage of {}",
                    stage.len()
                )));
            }
            for router in stage {
                router.restore_state(r)?;
            }
        }
        let n = r.usize()?;
        if n != self.endpoints.len() {
            return Err(bad(format!(
                "saved {n} endpoints, network has {}",
                self.endpoints.len()
            )));
        }
        for endpoint in &mut self.endpoints {
            endpoint.restore_state(r)?;
        }
        self.engine.restore_state(r)?;
        self.stats.restore_state(r)?;
        let n = r.usize()?;
        if n > r.remaining() {
            return Err(bad(format!("{n}-entry outcome list exceeds the stream")));
        }
        self.outcomes = (0..n)
            .map(|_| MessageOutcome::restore_state(r))
            .collect::<Result<_, _>>()?;
        self.registry.restore_state(r)?;
        Ok(())
    }

    /// Freezes the current telemetry into a schema-versioned snapshot:
    /// registry counters brought up to date with the live router cells
    /// (without disturbing the sync cadence), the total-latency
    /// summary, and the decimated series.
    pub fn telemetry_snapshot(&mut self, name: &str) -> TelemetrySnapshot {
        // Sync a clone so deltas/series keep their interval semantics
        // for the ongoing run; snapshots are a cold path.
        let mut reg = self.registry.clone();
        for (s, stage) in self.routers.iter().enumerate() {
            for (r, router) in stage.iter().enumerate() {
                reg.sync_slot(s, r, router.counters());
            }
        }
        let latency = self.stats.total_latency.summary();
        TelemetrySnapshot::from_registry(name, self.config.engine.name(), self.now, &reg, latency)
    }
}

/// Appends a fault set to a checkpoint stream in sorted order — the
/// set's hash containers iterate nondeterministically, and checkpoints
/// must be byte-stable.
pub(crate) fn save_fault_set(w: &mut StateWriter, faults: &FaultSet) {
    w.section("faults");
    let mut routers: Vec<(usize, usize)> = faults.dead_routers().collect();
    routers.sort_unstable();
    w.usize(routers.len());
    for (s, r) in routers {
        w.usize(s);
        w.usize(r);
    }
    let mut links: Vec<(LinkId, FaultKind)> = faults.faulty_links().collect();
    links.sort_unstable_by_key(|(l, _)| (l.stage, l.router, l.port));
    w.usize(links.len());
    for (l, kind) in links {
        w.usize(l.stage);
        w.usize(l.router);
        w.usize(l.port);
        match kind {
            FaultKind::Dead => w.u64(0),
            FaultKind::CorruptData { xor } => {
                w.u64(1);
                w.u64(u64::from(xor));
            }
            FaultKind::Intermittent { xor, period } => {
                w.u64(2);
                w.u64(u64::from(xor));
                w.u64(u64::from(period));
            }
        }
    }
    let mut endpoints: Vec<usize> = faults.dead_endpoints().collect();
    endpoints.sort_unstable();
    w.usize(endpoints.len());
    for e in endpoints {
        w.usize(e);
    }
}

/// Reads a fault set back from a checkpoint stream.
pub(crate) fn restore_fault_set(r: &mut StateReader<'_>) -> Result<FaultSet, StateError> {
    let bad = |detail: String| StateError::BadValue {
        section: String::from("faults"),
        detail,
    };
    let read_u16 = |r: &mut StateReader<'_>| -> Result<u16, StateError> {
        let v = r.u64()?;
        u16::try_from(v).map_err(|_| bad(format!("{v} overflows an XOR mask")))
    };
    r.section("faults")?;
    let mut faults = FaultSet::new();
    for _ in 0..r.usize()? {
        let (s, router) = (r.usize()?, r.usize()?);
        faults.kill_router(s, router);
    }
    for _ in 0..r.usize()? {
        let link = LinkId::new(r.usize()?, r.usize()?, r.usize()?);
        let kind = match r.u64()? {
            0 => FaultKind::Dead,
            1 => FaultKind::CorruptData { xor: read_u16(r)? },
            2 => {
                let xor = read_u16(r)?;
                let period = r.u64()?;
                let period = u32::try_from(period)
                    .map_err(|_| bad(format!("{period} overflows a fault period")))?;
                FaultKind::Intermittent { xor, period }
            }
            k => return Err(bad(format!("{k} is not a fault kind"))),
        };
        faults.break_link(link, kind);
    }
    for _ in 0..r.usize()? {
        let e = r.usize()?;
        faults.kill_endpoint(e);
    }
    Ok(faults)
}
