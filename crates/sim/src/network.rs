//! The assembled, tickable network.
//!
//! [`NetworkSim`] instantiates one [`metro_core::Router`] per topology
//! position, one [`crate::wire::Wire`] per port-level link, and
//! one [`crate::endpoint::Endpoint`] per network endpoint, and
//! advances everything synchronously from a central clock — pipelined
//! circuit switching exactly as the paper's §3 describes.
//!
//! Components are Moore machines with respect to the data lanes (their
//! outputs depend on registered state), so the per-cycle order —
//! endpoints, routers, then wires — is free of combinational races; the
//! BCB, which *is* combinational in hardware, gains at most one cycle of
//! latency, which only makes fast reclamation marginally slower than
//! silicon (conservative).

use crate::endpoint::{AttemptEvidence, Endpoint, EndpointConfig, EndpointIo};
use crate::message::{FailureKind, MessageOutcome};
use crate::shard::ShardPlan;
use crate::stats::NetworkStats;
use crate::wire::Wire;
use metro_core::header::HeaderPlan;
use metro_core::{
    ArchParams, BwdIn, FwdIn, PortMode, RandomSource, Router, RouterConfig, SelectionPolicy,
    StreamChecksum, TickOutput, Word,
};
use metro_harness::TickPool;
use metro_scan::boundary::test_wire;
use metro_scan::diagnosis::{diagnose_attempt, expected_stage_checksums, AttemptDiagnosis};
use metro_telemetry::{RouterCounter, TelemetryRegistry, TelemetrySnapshot};
use metro_topo::fault::FaultSet;
use metro_topo::flatlinks::{FlatLinks, FlatTarget};
use metro_topo::graph::{LinkId, LinkTarget};
use metro_topo::multibutterfly::{Multibutterfly, MultibutterflySpec};

/// Which tick engine drives the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// Flat double-buffered channel arenas walked with precomputed slot
    /// indices ([`metro_topo::flatlinks`]); the steady-state tick path
    /// performs no heap allocation. The default.
    #[default]
    Flat,
    /// The original nested-`Vec` engine, rebuilt buffers each tick.
    /// Retained as the golden reference for equivalence testing and
    /// before/after benchmarking.
    Reference,
}

/// Simulator configuration: the implementation parameters shared by
/// every router in the network plus protocol knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Channel width `w` in bits.
    pub width: usize,
    /// Header words consumed per router, `hw` (0 = RN1-style bit
    /// consumption with swallow).
    pub header_words: usize,
    /// Data pipestages inside each router, `dp`.
    pub pipestages: usize,
    /// Pipeline delay of every inter-component wire (the uniform
    /// variable-turn-delay setting; 0 = single pipeline stage per
    /// routing stage, the RN1/Figure 3 operating point).
    pub wire_delay: usize,
    /// Per-boundary wire delays overriding `wire_delay`: entry 0 is the
    /// injection boundary (endpoints → stage 0), entry `s + 1` the
    /// boundary out of stage `s` (the last entry is the delivery
    /// boundary). "It is generally not possible or desirable to make
    /// all the connections between routers equally long … closer
    /// routers should be able to take advantage" (paper §5.1, Variable
    /// Turn Delay). Must have `stages + 1` entries when present.
    pub stage_wire_delays: Option<Vec<usize>>,
    /// Whether forward ports use fast path reclamation (BCB) on
    /// blocking; `false` holds blocked connections for a detailed
    /// turn-time reply (paper §5.1).
    pub fast_reclaim: bool,
    /// Backward-port selection policy (the architecture mandates
    /// random; others are for ablation).
    pub selection: SelectionPolicy,
    /// Endpoint NIC configuration.
    pub endpoint: EndpointConfig,
    /// Master seed: router randomness, endpoint port choice, backoff.
    pub seed: u64,
    /// Which tick engine drives the fabric. Both engines are
    /// cycle-for-cycle equivalent (see the golden-equivalence tests);
    /// [`EngineKind::Flat`] is simply faster.
    pub engine: EngineKind,
    /// Cycles between telemetry syncs (clamped to ≥ 1): how often the
    /// registry copies router counters, feeds the trace, and extends
    /// the time series. 1 = every cycle (exact trace stamps); larger
    /// values coarsen stamps and series resolution for a cheaper
    /// steady-state tick.
    pub telemetry_every: u64,
    /// Closes the fault loop online (paper §5.3): endpoints hand every
    /// failed attempt's reply evidence to the network, which localizes
    /// corruption through the transit checksums
    /// (`metro-scan::diagnosis`), confirms silent path losses with a
    /// behavioral boundary-scan wire sweep, and disables the implicated
    /// ports in the live router configurations — no oracle access to
    /// the injected fault set. Off by default: evidence capture clones
    /// a record per failed attempt, which congested fault-free runs
    /// should not pay for.
    pub self_heal: bool,
    /// Tick-parallelism shard count for the [`EngineKind::Flat`]
    /// engine. `1` (the default) keeps the classic single-threaded
    /// tick; `N > 1` partitions routers, endpoints, and wires into `N`
    /// weight-balanced shards driven through per-phase barriers on a
    /// persistent worker pool; `0` asks for the host's available
    /// parallelism. The effective count is capped at the router count.
    /// Sharding is a pure execution strategy: every shard count
    /// produces **bit-identical** results (outcome streams, telemetry,
    /// traces) because components only read last-tick state and write
    /// disjoint next-tick slots. Ignored by the Reference engine.
    pub shards: usize,
}

impl Default for SimConfig {
    /// The Figure 3 operating point: 8-bit channels, `hw = 0`,
    /// `dp = 1`, single pipeline stage per routing stage, fast
    /// reclamation on.
    fn default() -> Self {
        Self {
            width: 8,
            header_words: 0,
            pipestages: 1,
            wire_delay: 0,
            stage_wire_delays: None,
            fast_reclaim: true,
            selection: SelectionPolicy::Random,
            endpoint: EndpointConfig::default(),
            seed: 0xC0FFEE,
            engine: EngineKind::default(),
            telemetry_every: 1,
            self_heal: false,
            shards: 1,
        }
    }
}

/// One copy of every registered channel value in the network, indexed
/// by the flat slot scheme of [`FlatLinks`]. The flat engine keeps two
/// of these — `cur` (read by components this cycle) and `next` (written
/// by wires for the coming cycle) — and swaps them once per tick.
#[derive(Debug, Clone)]
struct ChannelArena {
    /// Forward-lane word arriving at each router forward port (fslot).
    fwd_in: Vec<Word>,
    /// Reverse-lane word arriving at each router backward port (bslot).
    rev_in: Vec<Word>,
    /// BCB arriving at each router backward port (bslot).
    bcb_in: Vec<bool>,
    /// Reverse-lane word arriving at each endpoint output port
    /// (ep slot).
    ep_out_rev: Vec<Word>,
    /// BCB arriving at each endpoint output port (ep slot).
    ep_out_bcb: Vec<bool>,
    /// Forward-lane word arriving at each endpoint input port (ep slot).
    ep_in_fwd: Vec<Word>,
}

impl ChannelArena {
    fn idle(links: &FlatLinks) -> Self {
        Self {
            fwd_in: vec![Word::Empty; links.n_fwd_slots()],
            rev_in: vec![Word::Empty; links.n_bwd_slots()],
            bcb_in: vec![false; links.n_bwd_slots()],
            ep_out_rev: vec![Word::Empty; links.n_ep_slots()],
            ep_out_bcb: vec![false; links.n_ep_slots()],
            ep_in_fwd: vec![Word::Empty; links.n_ep_slots()],
        }
    }
}

/// Component outputs computed during the current tick, before the wires
/// consume them. Preallocated once; every slot is overwritten each
/// cycle.
#[derive(Debug, Clone)]
struct DriveBus {
    /// Forward-lane word each router drives out of a backward port
    /// (bslot).
    out_bwd: Vec<Word>,
    /// Reverse-lane word each router drives out of a forward port
    /// (fslot).
    out_fwd: Vec<Word>,
    /// BCB each router drives out of a forward port (fslot).
    out_bcb: Vec<bool>,
    /// Forward-lane word each endpoint drives into the network
    /// (ep slot).
    ep_out_fwd: Vec<Word>,
    /// Reverse-lane reply each endpoint drives at its input side
    /// (ep slot).
    ep_in_rev: Vec<Word>,
}

impl DriveBus {
    fn idle(links: &FlatLinks) -> Self {
        Self {
            out_bwd: vec![Word::Empty; links.n_bwd_slots()],
            out_fwd: vec![Word::Empty; links.n_fwd_slots()],
            out_bcb: vec![false; links.n_fwd_slots()],
            ep_out_fwd: vec![Word::Empty; links.n_ep_slots()],
            ep_in_rev: vec![Word::Empty; links.n_ep_slots()],
        }
    }
}

/// The allocation-free tick engine: flat arenas + precomputed slots.
#[derive(Debug, Clone)]
struct FlatEngine {
    links: FlatLinks,
    cur: ChannelArena,
    next: ChannelArena,
    bus: DriveBus,
    /// Injection wires, one per endpoint slot.
    inj_wires: Vec<Wire>,
    /// Inter-stage / delivery wires, one per backward slot.
    stage_wires: Vec<Wire>,
    /// Dead-router flags, flat router numbering; synced from the fault
    /// set in [`NetworkSim::apply_faults`] so the tick path never
    /// queries the fault set.
    router_dead: Vec<bool>,
    /// Per-wire [`Wire::is_transparent`] flags (zero delay, no fault):
    /// the tick path copies slots directly instead of calling `advance`.
    /// Transparency only changes when faults change, so these are
    /// rebuilt in [`NetworkSim::apply_faults`], never per tick.
    inj_transparent: Vec<bool>,
    stage_transparent: Vec<bool>,
    /// Sharded-tick state when `SimConfig.shards` resolved to more
    /// than one shard; `None` runs the classic single-threaded tick.
    shard: Option<Box<ShardState>>,
}

/// Everything the sharded flat tick needs beyond the engine itself:
/// the topology partition, the persistent worker pool, and the
/// forward-lane staging buffers wires park cross-shard words in
/// between the wire and gather phases.
#[derive(Debug)]
struct ShardState {
    plan: ShardPlan,
    /// Created lazily on the first sharded tick (so merely *building*
    /// a sharded sim spawns no threads) and intentionally not cloned —
    /// a cloned sim respins its own pool on its next tick.
    pool: Option<TickPool>,
    /// Forward-lane word each injection wire produced this cycle,
    /// indexed by endpoint slot; the gather phase routes it to the
    /// target stage-0 forward slot (which may live on another shard).
    fwd_inj: Vec<Word>,
    /// Forward-lane word each inter-stage/delivery wire produced this
    /// cycle, indexed by backward slot.
    fwd_stage: Vec<Word>,
}

impl Clone for ShardState {
    fn clone(&self) -> Self {
        Self {
            plan: self.plan.clone(),
            pool: None,
            fwd_inj: self.fwd_inj.clone(),
            fwd_stage: self.fwd_stage.clone(),
        }
    }
}

/// Splits `slice` at a shard plan's cut points (a nondecreasing
/// `(shards + 1)`-entry array covering `0..slice.len()`), returning one
/// disjoint mutable subslice per shard — the lock-free write partition
/// the sharded tick hands its workers.
fn split_by_cuts<'a, T>(mut slice: &'a mut [T], cuts: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(cuts.len().saturating_sub(1));
    let mut prev = 0usize;
    for &c in &cuts[1..] {
        let (head, tail) = slice.split_at_mut(c - prev);
        out.push(head);
        slice = tail;
        prev = c;
    }
    out
}

/// Phase-1 work package: one shard's endpoints and routers read the
/// shared `cur` arena (last-tick state only — the Moore-machine
/// property that makes partitioned ticking exact) and drive this
/// shard's disjoint bus regions.
struct CompShard<'a> {
    now: u64,
    ep: usize,
    /// First endpoint index / endpoint slot / forward slot / backward
    /// slot this shard owns (global-to-local offsets for the split bus
    /// slices below).
    ep_base: usize,
    eps0: usize,
    f0: usize,
    b0: usize,
    links: &'a FlatLinks,
    cur: &'a ChannelArena,
    router_dead: &'a [bool],
    endpoints: &'a mut [Endpoint],
    /// `(stage, first in-stage router index, routers)` segments tiling
    /// this shard's flat router range.
    routers: Vec<(usize, usize, &'a mut [Router])>,
    ep_out_fwd: &'a mut [Word],
    ep_in_rev: &'a mut [Word],
    out_bwd: &'a mut [Word],
    out_fwd: &'a mut [Word],
    out_bcb: &'a mut [bool],
}

impl CompShard<'_> {
    fn run(&mut self) {
        let ep = self.ep;
        for (i, endpoint) in self.endpoints.iter_mut().enumerate() {
            let g = (self.ep_base + i) * ep;
            let l = g - self.eps0;
            endpoint.tick_into(
                self.now,
                &self.cur.ep_out_rev[g..g + ep],
                &self.cur.ep_out_bcb[g..g + ep],
                &self.cur.ep_in_fwd[g..g + ep],
                &mut self.ep_out_fwd[l..l + ep],
                &mut self.ep_in_rev[l..l + ep],
            );
        }
        for (s, r0, routers) in &mut self.routers {
            let (s, r0) = (*s, *r0);
            let nf = self.links.forward_ports(s);
            let nb = self.links.backward_ports(s);
            for (i, router) in routers.iter_mut().enumerate() {
                let r = r0 + i;
                let fl = self.links.fslot(s, r, 0) - self.f0;
                let bl = self.links.bslot(s, r, 0) - self.b0;
                let fg = fl + self.f0;
                let bg = bl + self.b0;
                if self.router_dead[self.links.router_index(s, r)] {
                    self.out_bwd[bl..bl + nb].fill(Word::Empty);
                    self.out_fwd[fl..fl + nf].fill(Word::Empty);
                    self.out_bcb[fl..fl + nf].fill(false);
                    continue;
                }
                router.tick_into(
                    &self.cur.fwd_in[fg..fg + nf],
                    &self.cur.rev_in[bg..bg + nb],
                    &self.cur.bcb_in[bg..bg + nb],
                    &mut self.out_bwd[bl..bl + nb],
                    &mut self.out_fwd[fl..fl + nf],
                    &mut self.out_bcb[fl..fl + nf],
                );
            }
        }
    }
}

/// Phase-2 work package: this shard's wires read the whole bus
/// (complete after the phase-1 barrier) and write the reverse/BCB
/// lanes straight into the shard's own `next` regions — a wire's
/// backward slot and endpoint slot are its owner's by construction.
/// Only the forward lane can cross shards, so it is parked in the
/// staging buffers for the gather phase.
struct WireShard<'a> {
    eps0: usize,
    b0: usize,
    links: &'a FlatLinks,
    bus: &'a DriveBus,
    inj_transparent: &'a [bool],
    stage_transparent: &'a [bool],
    inj_wires: &'a mut [Wire],
    stage_wires: &'a mut [Wire],
    next_ep_out_rev: &'a mut [Word],
    next_ep_out_bcb: &'a mut [bool],
    next_rev_in: &'a mut [Word],
    next_bcb_in: &'a mut [bool],
    fwd_inj: &'a mut [Word],
    fwd_stage: &'a mut [Word],
}

impl WireShard<'_> {
    fn run(&mut self) {
        for (l, wire) in self.inj_wires.iter_mut().enumerate() {
            let i = self.eps0 + l;
            let t = self.links.inj_target(i);
            let (fwd_o, rev_o, bcb_o) = if self.inj_transparent[i] {
                (
                    self.bus.ep_out_fwd[i],
                    self.bus.out_fwd[t],
                    self.bus.out_bcb[t],
                )
            } else {
                wire.advance(
                    self.bus.ep_out_fwd[i],
                    self.bus.out_fwd[t],
                    self.bus.out_bcb[t],
                )
            };
            self.fwd_inj[l] = fwd_o;
            self.next_ep_out_rev[l] = rev_o;
            self.next_ep_out_bcb[l] = bcb_o;
        }
        for (l, wire) in self.stage_wires.iter_mut().enumerate() {
            let j = self.b0 + l;
            match self.links.bwd_target(j) {
                FlatTarget::Fwd(t) => {
                    let t = t as usize;
                    let (fwd_o, rev_o, bcb_o) = if self.stage_transparent[j] {
                        (
                            self.bus.out_bwd[j],
                            self.bus.out_fwd[t],
                            self.bus.out_bcb[t],
                        )
                    } else {
                        wire.advance(
                            self.bus.out_bwd[j],
                            self.bus.out_fwd[t],
                            self.bus.out_bcb[t],
                        )
                    };
                    self.fwd_stage[l] = fwd_o;
                    self.next_rev_in[l] = rev_o;
                    self.next_bcb_in[l] = bcb_o;
                }
                FlatTarget::Endpoint(i) => {
                    let i = i as usize;
                    let (fwd_o, rev_o) = if self.stage_transparent[j] {
                        (self.bus.out_bwd[j], self.bus.ep_in_rev[i])
                    } else {
                        let (f, r, _) =
                            wire.advance(self.bus.out_bwd[j], self.bus.ep_in_rev[i], false);
                        (f, r)
                    };
                    self.fwd_stage[l] = fwd_o;
                    self.next_rev_in[l] = rev_o;
                    self.next_bcb_in[l] = false;
                }
            }
        }
    }
}

/// Phase-3 work package: copy staged forward-lane words (complete
/// after the phase-2 barrier) into the forward-input and
/// endpoint-input slots this shard owns, walking the plan's
/// precomputed target-owner gather lists.
struct GatherShard<'a> {
    f0: usize,
    eps0: usize,
    fwd_from_inj: &'a [(u32, u32)],
    fwd_from_bwd: &'a [(u32, u32)],
    ep_in_from_bwd: &'a [(u32, u32)],
    fwd_inj: &'a [Word],
    fwd_stage: &'a [Word],
    next_fwd_in: &'a mut [Word],
    next_ep_in_fwd: &'a mut [Word],
}

impl GatherShard<'_> {
    fn run(&mut self) {
        for &(t, i) in self.fwd_from_inj {
            self.next_fwd_in[t as usize - self.f0] = self.fwd_inj[i as usize];
        }
        for &(t, j) in self.fwd_from_bwd {
            self.next_fwd_in[t as usize - self.f0] = self.fwd_stage[j as usize];
        }
        for &(i, j) in self.ep_in_from_bwd {
            self.next_ep_in_fwd[i as usize - self.eps0] = self.fwd_stage[j as usize];
        }
    }
}

/// The original engine: nested `Vec` buffers rebuilt each tick, with
/// per-tick topology and fault lookups.
#[derive(Debug, Clone)]
struct ReferenceEngine {
    inj_wires: Vec<Vec<Wire>>,
    stage_wires: Vec<Vec<Vec<Wire>>>,
    fwd_in: Vec<Vec<Vec<Word>>>,
    rev_in: Vec<Vec<Vec<Word>>>,
    bcb_in: Vec<Vec<Vec<bool>>>,
    ep_out_rev: Vec<Vec<Word>>,
    ep_out_bcb: Vec<Vec<bool>>,
    ep_in_fwd: Vec<Vec<Word>>,
}

#[derive(Debug, Clone)]
enum EngineState {
    Flat(Box<FlatEngine>),
    Reference(Box<ReferenceEngine>),
}

/// A complete METRO network under simulation.
#[derive(Debug, Clone)]
pub struct NetworkSim {
    topo: Multibutterfly,
    config: SimConfig,
    plan: HeaderPlan,
    routers: Vec<Vec<Router>>,
    endpoints: Vec<Endpoint>,
    engine: EngineState,
    faults: FaultSet,
    now: u64,
    outcomes: Vec<MessageOutcome>,
    stats: NetworkStats,
    stats_from: u64,
    trace: Option<crate::trace::TraceLog>,
    /// The telemetry spine: rebased per-router counters, per-sync
    /// deltas (the trace's input), and decimated network-total series.
    registry: TelemetryRegistry,
    /// Links the self-healing layer has masked (both port ends
    /// disabled), diagnosis-driven — never read from the fault set.
    healed_links: Vec<LinkId>,
    /// Injection ports the self-healing layer has masked at their
    /// endpoints, as `(endpoint, output_port)`.
    healed_injections: Vec<(usize, usize)>,
}

impl NetworkSim {
    /// Builds a simulation of the network `spec` with implementation
    /// parameters `config`.
    ///
    /// # Errors
    ///
    /// Propagates topology validation errors; router parameter errors
    /// surface as [`metro_core::ParamError`] converted to a topology
    /// boundary error message via panic-free construction.
    pub fn new(
        spec: &MultibutterflySpec,
        config: &SimConfig,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let topo = Multibutterfly::build(spec)?;
        if let Some(d) = &config.stage_wire_delays {
            assert_eq!(
                d.len(),
                topo.stages() + 1,
                "stage_wire_delays must cover every boundary (stages + 1)"
            );
        }
        let boundary_delay = |b: usize| -> usize {
            config
                .stage_wire_delays
                .as_ref()
                .map_or(config.wire_delay, |d| d[b])
        };
        let plan = topo.header_plan(config.width, config.header_words);
        let master = RandomSource::new(config.seed);

        let mut routers = Vec::with_capacity(topo.stages());
        for s in 0..topo.stages() {
            let st = topo.stage_spec(s);
            let params = ArchParams::new(
                st.forward_ports,
                st.backward_ports,
                config.width,
                st.dilation,
                config.header_words,
                config.pipestages,
            )?
            .with_max_turn_delay(boundary_delay(s).max(boundary_delay(s + 1)).max(7))?;
            // Program every port's variable turn delay with the wire's
            // pipeline depth (paper §5.1) — the routers use it to size
            // the post-reversal settle window.
            let mut builder = RouterConfig::new(&params)
                .with_dilation(st.dilation)
                .with_swallow_all(config.header_words == 0 && plan.swallow()[s])
                .with_fast_reclaim_all(config.fast_reclaim);
            for f in 0..st.forward_ports {
                builder = builder.with_forward_turn_delay(f, boundary_delay(s));
            }
            for b in 0..st.backward_ports {
                builder = builder.with_backward_turn_delay(b, boundary_delay(s + 1));
            }
            let router_config = builder.build()?;
            let mut stage = Vec::with_capacity(topo.routers_in_stage(s));
            for r in 0..topo.routers_in_stage(s) {
                let mut seed_src = master.derive((s as u64) << 32 | r as u64);
                let seed = seed_src.bits(64);
                stage.push(Router::with_policy(
                    params,
                    router_config.clone(),
                    seed,
                    config.selection,
                )?);
            }
            routers.push(stage);
        }

        let ep = topo.endpoint_ports();
        let endpoints = (0..topo.endpoints())
            .map(|e| {
                let mut seed_src = master.derive(0xEE00_0000 + e as u64);
                let mut endpoint = Endpoint::new(e, ep, ep, config.endpoint, seed_src.bits(64));
                endpoint.set_collect_evidence(config.self_heal);
                endpoint
            })
            .collect();

        let engine = match config.engine {
            EngineKind::Flat => {
                let links = FlatLinks::build(&topo);
                let inj_wires: Vec<Wire> = (0..links.n_ep_slots())
                    .map(|_| Wire::new(boundary_delay(0)))
                    .collect();
                let stage_wires: Vec<Wire> = (0..topo.stages())
                    .flat_map(|s| {
                        let n = topo.routers_in_stage(s) * topo.stage_spec(s).backward_ports;
                        std::iter::repeat_n(boundary_delay(s + 1), n)
                    })
                    .map(Wire::new)
                    .collect();
                let inj_transparent = inj_wires.iter().map(Wire::is_transparent).collect();
                let stage_transparent = stage_wires.iter().map(Wire::is_transparent).collect();
                // Resolve the shard knob: 0 = host parallelism, then
                // cap at the router count (a shard without routers is
                // pure overhead); one effective shard means the
                // classic single-threaded tick.
                let requested = match config.shards {
                    0 => metro_harness::default_jobs().get(),
                    n => n,
                };
                let effective = requested.min(links.n_routers()).max(1);
                let shard = (effective > 1).then(|| {
                    Box::new(ShardState {
                        plan: ShardPlan::build(&links, effective),
                        pool: None,
                        fwd_inj: vec![Word::Empty; links.n_ep_slots()],
                        fwd_stage: vec![Word::Empty; links.n_bwd_slots()],
                    })
                });
                EngineState::Flat(Box::new(FlatEngine {
                    cur: ChannelArena::idle(&links),
                    next: ChannelArena::idle(&links),
                    bus: DriveBus::idle(&links),
                    inj_wires,
                    stage_wires,
                    router_dead: vec![false; links.n_routers()],
                    inj_transparent,
                    stage_transparent,
                    shard,
                    links,
                }))
            }
            EngineKind::Reference => EngineState::Reference(Box::new(ReferenceEngine {
                inj_wires: (0..topo.endpoints())
                    .map(|_| (0..ep).map(|_| Wire::new(boundary_delay(0))).collect())
                    .collect(),
                stage_wires: (0..topo.stages())
                    .map(|s| {
                        (0..topo.routers_in_stage(s))
                            .map(|_| {
                                (0..topo.stage_spec(s).backward_ports)
                                    .map(|_| Wire::new(boundary_delay(s + 1)))
                                    .collect()
                            })
                            .collect()
                    })
                    .collect(),
                fwd_in: (0..topo.stages())
                    .map(|s| {
                        vec![
                            vec![Word::Empty; topo.stage_spec(s).forward_ports];
                            topo.routers_in_stage(s)
                        ]
                    })
                    .collect(),
                rev_in: (0..topo.stages())
                    .map(|s| {
                        vec![
                            vec![Word::Empty; topo.stage_spec(s).backward_ports];
                            topo.routers_in_stage(s)
                        ]
                    })
                    .collect(),
                bcb_in: (0..topo.stages())
                    .map(|s| {
                        vec![
                            vec![false; topo.stage_spec(s).backward_ports];
                            topo.routers_in_stage(s)
                        ]
                    })
                    .collect(),
                ep_out_rev: vec![vec![Word::Empty; ep]; topo.endpoints()],
                ep_out_bcb: vec![vec![false; ep]; topo.endpoints()],
                ep_in_fwd: vec![vec![Word::Empty; ep]; topo.endpoints()],
            })),
        };

        let routers_per_stage: Vec<usize> = (0..topo.stages())
            .map(|s| topo.routers_in_stage(s))
            .collect();
        Ok(Self {
            topo,
            config: config.clone(),
            plan,
            routers,
            endpoints,
            engine,
            faults: FaultSet::new(),
            now: 0,
            outcomes: Vec::new(),
            stats: NetworkStats::new(),
            stats_from: 0,
            trace: None,
            registry: TelemetryRegistry::new(&routers_per_stage, config.telemetry_every),
            healed_links: Vec::new(),
            healed_injections: Vec::new(),
        })
    }

    /// Enables cycle-level event tracing, retaining at most `capacity`
    /// records (0 = unbounded). See [`crate::trace::TraceLog`].
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(crate::trace::TraceLog::new(capacity));
    }

    /// Sets how often (in cycles) the telemetry registry syncs router
    /// counters, feeds the trace, and extends the time series (default
    /// 1 = every cycle; 0 is clamped to 1). Counter increments between
    /// syncs are never lost — the registry diffs cumulative counters —
    /// but trace stamps and series buckets coarsen to the sync grid,
    /// trading resolution for a cheaper steady-state tick.
    pub fn set_telemetry_interval(&mut self, every: u64) {
        self.registry.set_interval(every);
    }

    /// Historical name for [`NetworkSim::set_telemetry_interval`]: the
    /// trace consumes registry deltas, so the two share one interval.
    pub fn set_trace_interval(&mut self, every: u64) {
        self.set_telemetry_interval(every);
    }

    /// The telemetry registry: rebased per-router counters, last-sync
    /// deltas, and decimated per-counter series.
    #[must_use]
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.registry
    }

    /// The trace log, if tracing is enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&crate::trace::TraceLog> {
        self.trace.as_ref()
    }

    /// Mutable trace access (for clearing between phases).
    pub fn trace_mut(&mut self) -> Option<&mut crate::trace::TraceLog> {
        self.trace.as_mut()
    }

    /// The topology under simulation.
    #[must_use]
    pub fn topology(&self) -> &Multibutterfly {
        &self.topo
    }

    /// The simulator configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The current clock cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The header plan messages in this network use.
    #[must_use]
    pub fn header_plan(&self) -> &HeaderPlan {
        &self.plan
    }

    /// Builds the complete word stream for a message: header + payload
    /// (masked to `w` bits) + end-to-end checksum + TURN.
    #[must_use]
    pub fn stream_for(&self, dest: usize, payload: &[u16]) -> Vec<Word> {
        let mask = if self.config.width >= 16 {
            u16::MAX
        } else {
            (1u16 << self.config.width) - 1
        };
        let digits = self.topo.route_digits(dest);
        let mut stream: Vec<Word> = self
            .plan
            .pack(&digits)
            .into_iter()
            .map(Word::Data)
            .collect();
        let mut ck = StreamChecksum::new();
        for &v in payload {
            let v = v & mask;
            ck.absorb_value(v);
            stream.push(Word::Data(v));
        }
        stream.push(Word::Checksum(ck.value()));
        stream.push(Word::Turn);
        stream
    }

    /// Builds a continuation segment (no header — the circuit is
    /// already established): payload + checksum + TURN.
    #[must_use]
    pub fn segment_for(&self, payload: &[u16]) -> Vec<Word> {
        let mask = if self.config.width >= 16 {
            u16::MAX
        } else {
            (1u16 << self.config.width) - 1
        };
        let mut ck = StreamChecksum::new();
        let mut stream = Vec::with_capacity(payload.len() + 2);
        for &v in payload {
            let v = v & mask;
            ck.absorb_value(v);
            stream.push(Word::Data(v));
        }
        stream.push(Word::Checksum(ck.value()));
        stream.push(Word::Turn);
        stream
    }

    /// Queues a multi-round conversation from `src` to `dest`: each
    /// entry of `payloads` travels as one segment over a *single*
    /// circuit, with the connection reversing between segments (the
    /// paper's "any number of data transmission reversals", §5.1).
    /// The destination endpoints must be configured with
    /// [`crate::endpoint::ReplyPolicy::Conversation`].
    ///
    /// # Panics
    ///
    /// Panics if `payloads` is empty or an endpoint is out of range.
    pub fn send_conversation(&mut self, src: usize, dest: usize, payloads: &[&[u16]]) {
        assert!(!payloads.is_empty(), "a conversation needs segments");
        assert!(src < self.topo.endpoints() && dest < self.topo.endpoints());
        let mut segments = Vec::with_capacity(payloads.len());
        segments.push(self.stream_for(dest, payloads[0]));
        for p in &payloads[1..] {
            segments.push(self.segment_for(p));
        }
        let payload_words = payloads.iter().map(|p| p.len()).sum();
        self.endpoints[src].enqueue_conversation(dest, segments, payload_words, self.now);
    }

    /// Queues a message from `src` to `dest` with the given payload.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dest` is out of range.
    pub fn send(&mut self, src: usize, dest: usize, payload: &[u16]) {
        assert!(src < self.topo.endpoints() && dest < self.topo.endpoints());
        let stream = self.stream_for(dest, payload);
        self.endpoints[src].enqueue(dest, payload.to_vec(), stream, self.now);
    }

    /// Sends one message and runs the clock until it completes (or
    /// `max_cycles` elapse). Returns the outcome with
    /// `payload_delivered` filled in from the destination's log.
    pub fn send_and_wait(
        &mut self,
        src: usize,
        dest: usize,
        payload: &[u16],
        max_cycles: u64,
    ) -> Option<MessageOutcome> {
        self.send(src, dest, payload);
        let deadline = self.now + max_cycles;
        while self.now < deadline {
            self.tick();
            if let Some(pos) = self
                .outcomes
                .iter()
                .position(|o| o.src == src && o.dest == dest)
            {
                let mut outcome = self.outcomes.remove(pos);
                if let Some(d) = self.endpoints[dest]
                    .take_delivered()
                    .into_iter()
                    .next_back()
                {
                    outcome.payload_delivered = d.payload;
                }
                return Some(outcome);
            }
        }
        None
    }

    /// Advances the whole network one clock cycle.
    pub fn tick(&mut self) {
        match &self.engine {
            EngineState::Flat(eng) if eng.shard.is_some() => self.tick_flat_sharded(),
            EngineState::Flat(_) => self.tick_flat(),
            EngineState::Reference(_) => self.tick_reference(),
        }
        self.after_tick();
    }

    /// The effective shard count the tick runs with (1 when the
    /// single-threaded path — either engine — is active).
    #[must_use]
    pub fn shards(&self) -> usize {
        match &self.engine {
            EngineState::Flat(eng) => eng.shard.as_ref().map_or(1, |s| s.plan.shards()),
            EngineState::Reference(_) => 1,
        }
    }

    /// The flat engine's cycle: endpoints and routers read registered
    /// inputs from the `cur` arena and drive the bus; wires consume the
    /// bus and write every slot of the `next` arena; the arenas swap.
    /// The swap is sound because every linked slot is written every
    /// cycle (unlinked slots stay `Empty` in both buffers), and nothing
    /// here allocates.
    fn tick_flat(&mut self) {
        let EngineState::Flat(eng) = &mut self.engine else {
            unreachable!("tick_flat requires the flat engine");
        };
        let FlatEngine {
            links,
            cur,
            next,
            bus,
            inj_wires,
            stage_wires,
            router_dead,
            inj_transparent,
            stage_transparent,
            shard: _,
        } = &mut **eng;
        let ep = links.ep_ports();

        // 1. Endpoints compute their outputs from last cycle's inputs.
        for (e, endpoint) in self.endpoints.iter_mut().enumerate() {
            let lo = e * ep;
            let hi = lo + ep;
            endpoint.tick_into(
                self.now,
                &cur.ep_out_rev[lo..hi],
                &cur.ep_out_bcb[lo..hi],
                &cur.ep_in_fwd[lo..hi],
                &mut bus.ep_out_fwd[lo..hi],
                &mut bus.ep_in_rev[lo..hi],
            );
        }

        // 2. Routers compute their outputs.
        for (s, stage) in self.routers.iter_mut().enumerate() {
            let nf = links.forward_ports(s);
            let nb = links.backward_ports(s);
            for (r, router) in stage.iter_mut().enumerate() {
                let f0 = links.fslot(s, r, 0);
                let b0 = links.bslot(s, r, 0);
                if router_dead[links.router_index(s, r)] {
                    bus.out_bwd[b0..b0 + nb].fill(Word::Empty);
                    bus.out_fwd[f0..f0 + nf].fill(Word::Empty);
                    bus.out_bcb[f0..f0 + nf].fill(false);
                    continue;
                }
                router.tick_into(
                    &cur.fwd_in[f0..f0 + nf],
                    &cur.rev_in[b0..b0 + nb],
                    &cur.bcb_in[b0..b0 + nb],
                    &mut bus.out_bwd[b0..b0 + nb],
                    &mut bus.out_fwd[f0..f0 + nf],
                    &mut bus.out_bcb[f0..f0 + nf],
                );
            }
        }

        // 3. Wires advance, writing every slot of the next arena.
        // Transparent wires (zero delay, fault-free — the common RN1
        // boundary) are identity functions: copy bus slots straight into
        // the next arena and never touch the `Wire` state.
        for (i, wire) in inj_wires.iter_mut().enumerate() {
            let t = links.inj_target(i);
            let (fwd_o, rev_o, bcb_o) = if inj_transparent[i] {
                (bus.ep_out_fwd[i], bus.out_fwd[t], bus.out_bcb[t])
            } else {
                wire.advance(bus.ep_out_fwd[i], bus.out_fwd[t], bus.out_bcb[t])
            };
            next.fwd_in[t] = fwd_o;
            next.ep_out_rev[i] = rev_o;
            next.ep_out_bcb[i] = bcb_o;
        }
        for (j, wire) in stage_wires.iter_mut().enumerate() {
            match links.bwd_target(j) {
                FlatTarget::Fwd(t) => {
                    let t = t as usize;
                    let (fwd_o, rev_o, bcb_o) = if stage_transparent[j] {
                        (bus.out_bwd[j], bus.out_fwd[t], bus.out_bcb[t])
                    } else {
                        wire.advance(bus.out_bwd[j], bus.out_fwd[t], bus.out_bcb[t])
                    };
                    next.fwd_in[t] = fwd_o;
                    next.rev_in[j] = rev_o;
                    next.bcb_in[j] = bcb_o;
                }
                FlatTarget::Endpoint(i) => {
                    let i = i as usize;
                    let (fwd_o, rev_o) = if stage_transparent[j] {
                        (bus.out_bwd[j], bus.ep_in_rev[i])
                    } else {
                        let (f, r, _) = wire.advance(bus.out_bwd[j], bus.ep_in_rev[i], false);
                        (f, r)
                    };
                    next.ep_in_fwd[i] = fwd_o;
                    next.rev_in[j] = rev_o;
                    next.bcb_in[j] = false;
                }
            }
        }
        std::mem::swap(cur, next);
    }

    /// The sharded flat cycle: the same component → wire dataflow as
    /// [`Self::tick_flat`], fanned out over the shard plan's disjoint
    /// slot ranges with a pool barrier between phases. Phase 1 ticks
    /// each shard's endpoints and routers into its bus regions; phase
    /// 2 advances each shard's wires, writing reverse/BCB lanes
    /// directly into owned `next` regions and staging forward-lane
    /// words; phase 3 gathers staged words to their (possibly remote)
    /// target slots via the plan's precomputed lists. Every component
    /// and wire is ticked exactly once by exactly one shard, all
    /// randomness stays inside per-component RNGs, and `after_tick`'s
    /// telemetry/harvest walk remains sequential in canonical slot
    /// order — which is why any shard count is bit-identical to one.
    fn tick_flat_sharded(&mut self) {
        let EngineState::Flat(eng) = &mut self.engine else {
            unreachable!("tick_flat_sharded requires the flat engine");
        };
        let FlatEngine {
            links,
            cur,
            next,
            bus,
            inj_wires,
            stage_wires,
            router_dead,
            inj_transparent,
            stage_transparent,
            shard,
        } = &mut **eng;
        let state = shard.as_mut().expect("sharded tick requires a shard plan");
        let ShardState {
            plan,
            pool,
            fwd_inj,
            fwd_stage,
        } = &mut **state;
        let n = plan.shards();
        let pool = &*pool.get_or_insert_with(|| {
            TickPool::new(std::num::NonZeroUsize::new(n).expect("shard count >= 1"))
        });
        let now = self.now;
        let ep = links.ep_ports();
        let links = &*links;
        let router_dead = &router_dead[..];

        // Phase 1: components drive the bus.
        {
            let cur = &*cur;
            let mut eps_it = split_by_cuts(&mut self.endpoints, &plan.ep_cut).into_iter();
            // Tile each shard's flat router range into per-stage
            // segments (shard ranges are contiguous in flat router
            // order, so this is one linear walk).
            let mut segs: Vec<Vec<(usize, usize, &mut [Router])>> =
                (0..n).map(|_| Vec::new()).collect();
            {
                let mut k = 0usize;
                let mut flat_base = 0usize;
                for (s, stage) in self.routers.iter_mut().enumerate() {
                    let stage_len = stage.len();
                    let mut rest: &mut [Router] = stage;
                    let mut offset = 0usize;
                    while !rest.is_empty() {
                        while plan.router_cut[k + 1] <= flat_base + offset {
                            k += 1;
                        }
                        let take = (plan.router_cut[k + 1] - (flat_base + offset)).min(rest.len());
                        let (head, tail) = rest.split_at_mut(take);
                        segs[k].push((s, offset, head));
                        offset += take;
                        rest = tail;
                    }
                    flat_base += stage_len;
                }
            }
            let mut segs_it = segs.into_iter();
            let mut ep_out_fwd_it = split_by_cuts(&mut bus.ep_out_fwd, &plan.eps_cut).into_iter();
            let mut ep_in_rev_it = split_by_cuts(&mut bus.ep_in_rev, &plan.eps_cut).into_iter();
            let mut out_bwd_it = split_by_cuts(&mut bus.out_bwd, &plan.b_cut).into_iter();
            let mut out_fwd_it = split_by_cuts(&mut bus.out_fwd, &plan.f_cut).into_iter();
            let mut out_bcb_it = split_by_cuts(&mut bus.out_bcb, &plan.f_cut).into_iter();
            let pkgs: Vec<std::sync::Mutex<CompShard>> = (0..n)
                .map(|k| {
                    std::sync::Mutex::new(CompShard {
                        now,
                        ep,
                        ep_base: plan.ep_cut[k],
                        eps0: plan.eps_cut[k],
                        f0: plan.f_cut[k],
                        b0: plan.b_cut[k],
                        links,
                        cur,
                        router_dead,
                        endpoints: eps_it.next().expect("one endpoint part per shard"),
                        routers: segs_it.next().expect("one segment list per shard"),
                        ep_out_fwd: ep_out_fwd_it.next().expect("one bus part per shard"),
                        ep_in_rev: ep_in_rev_it.next().expect("one bus part per shard"),
                        out_bwd: out_bwd_it.next().expect("one bus part per shard"),
                        out_fwd: out_fwd_it.next().expect("one bus part per shard"),
                        out_bcb: out_bcb_it.next().expect("one bus part per shard"),
                    })
                })
                .collect();
            pool.run(|w| pkgs[w].try_lock().expect("disjoint shard package").run());
        }

        // Phase 2: wires consume the completed bus.
        {
            let bus = &*bus;
            let inj_transparent = &inj_transparent[..];
            let stage_transparent = &stage_transparent[..];
            let ChannelArena {
                rev_in,
                bcb_in,
                ep_out_rev,
                ep_out_bcb,
                ..
            } = &mut *next;
            let mut inj_it = split_by_cuts(inj_wires, &plan.eps_cut).into_iter();
            let mut stage_it = split_by_cuts(stage_wires, &plan.b_cut).into_iter();
            let mut rev_it = split_by_cuts(rev_in, &plan.b_cut).into_iter();
            let mut bcb_it = split_by_cuts(bcb_in, &plan.b_cut).into_iter();
            let mut eor_it = split_by_cuts(ep_out_rev, &plan.eps_cut).into_iter();
            let mut eob_it = split_by_cuts(ep_out_bcb, &plan.eps_cut).into_iter();
            let mut finj_it = split_by_cuts(fwd_inj, &plan.eps_cut).into_iter();
            let mut fstage_it = split_by_cuts(fwd_stage, &plan.b_cut).into_iter();
            let pkgs: Vec<std::sync::Mutex<WireShard>> = (0..n)
                .map(|k| {
                    std::sync::Mutex::new(WireShard {
                        eps0: plan.eps_cut[k],
                        b0: plan.b_cut[k],
                        links,
                        bus,
                        inj_transparent,
                        stage_transparent,
                        inj_wires: inj_it.next().expect("one wire part per shard"),
                        stage_wires: stage_it.next().expect("one wire part per shard"),
                        next_ep_out_rev: eor_it.next().expect("one arena part per shard"),
                        next_ep_out_bcb: eob_it.next().expect("one arena part per shard"),
                        next_rev_in: rev_it.next().expect("one arena part per shard"),
                        next_bcb_in: bcb_it.next().expect("one arena part per shard"),
                        fwd_inj: finj_it.next().expect("one staging part per shard"),
                        fwd_stage: fstage_it.next().expect("one staging part per shard"),
                    })
                })
                .collect();
            pool.run(|w| pkgs[w].try_lock().expect("disjoint shard package").run());
        }

        // Phase 3: gather staged forward-lane words to their targets.
        {
            let fwd_inj = &fwd_inj[..];
            let fwd_stage = &fwd_stage[..];
            let ChannelArena {
                fwd_in, ep_in_fwd, ..
            } = &mut *next;
            let mut fin_it = split_by_cuts(fwd_in, &plan.f_cut).into_iter();
            let mut eif_it = split_by_cuts(ep_in_fwd, &plan.eps_cut).into_iter();
            let pkgs: Vec<std::sync::Mutex<GatherShard>> = (0..n)
                .map(|k| {
                    std::sync::Mutex::new(GatherShard {
                        f0: plan.f_cut[k],
                        eps0: plan.eps_cut[k],
                        fwd_from_inj: &plan.fwd_from_inj[k],
                        fwd_from_bwd: &plan.fwd_from_bwd[k],
                        ep_in_from_bwd: &plan.ep_in_from_bwd[k],
                        fwd_inj,
                        fwd_stage,
                        next_fwd_in: fin_it.next().expect("one arena part per shard"),
                        next_ep_in_fwd: eif_it.next().expect("one arena part per shard"),
                    })
                })
                .collect();
            pool.run(|w| pkgs[w].try_lock().expect("disjoint shard package").run());
        }

        std::mem::swap(cur, next);
    }

    /// The original engine's cycle, kept verbatim: per-tick buffer
    /// allocation, topology lookups, and fault-set queries.
    fn tick_reference(&mut self) {
        let EngineState::Reference(eng) = &mut self.engine else {
            unreachable!("tick_reference requires the reference engine");
        };
        let stages = self.topo.stages();
        let ep = self.topo.endpoint_ports();

        // 1. Endpoints compute their outputs from last cycle's inputs.
        let mut ep_drive = Vec::with_capacity(self.endpoints.len());
        for e in 0..self.endpoints.len() {
            let io = EndpointIo {
                out_rev_in: eng.ep_out_rev[e].clone(),
                out_bcb_in: eng.ep_out_bcb[e].clone(),
                in_fwd_in: eng.ep_in_fwd[e].clone(),
            };
            ep_drive.push(self.endpoints[e].tick(self.now, &io));
        }

        // 2. Routers compute their outputs.
        let mut router_out: Vec<Vec<TickOutput>> = Vec::with_capacity(stages);
        for s in 0..stages {
            let st = self.topo.stage_spec(s);
            let mut stage_out = Vec::with_capacity(self.routers[s].len());
            for r in 0..self.routers[s].len() {
                if self.faults.router_dead(s, r) {
                    stage_out.push(TickOutput {
                        bwd: vec![Word::Empty; st.backward_ports],
                        fwd: vec![Word::Empty; st.forward_ports],
                        bcb: vec![false; st.forward_ports],
                    });
                    continue;
                }
                let fwd = FwdIn::data(&eng.fwd_in[s][r]);
                let bwd = BwdIn::new(&eng.rev_in[s][r], &eng.bcb_in[s][r]);
                stage_out.push(self.routers[s][r].tick(&fwd, &bwd));
            }
            router_out.push(stage_out);
        }

        // 3. Wires advance; next-cycle input buffers are rebuilt.
        for (e, drive) in ep_drive.iter().enumerate() {
            for p in 0..ep {
                let (r0, f0) = self.topo.injection(e, p);
                let (fwd_o, rev_o, bcb_o) = eng.inj_wires[e][p].advance(
                    drive.out_fwd[p],
                    router_out[0][r0].fwd[f0],
                    router_out[0][r0].bcb[f0],
                );
                eng.fwd_in[0][r0][f0] = fwd_o;
                eng.ep_out_rev[e][p] = rev_o;
                eng.ep_out_bcb[e][p] = bcb_o;
            }
        }
        for s in 0..stages {
            let st = self.topo.stage_spec(s);
            for r in 0..self.routers[s].len() {
                for b in 0..st.backward_ports {
                    let fault = self.faults.link_fault(LinkId::new(s, r, b));
                    eng.stage_wires[s][r][b].set_fault(fault);
                    match self.topo.link(s, r, b) {
                        LinkTarget::Router { router, port } => {
                            let (fwd_o, rev_o, bcb_o) = eng.stage_wires[s][r][b].advance(
                                router_out[s][r].bwd[b],
                                router_out[s + 1][router].fwd[port],
                                router_out[s + 1][router].bcb[port],
                            );
                            eng.fwd_in[s + 1][router][port] = fwd_o;
                            eng.rev_in[s][r][b] = rev_o;
                            eng.bcb_in[s][r][b] = bcb_o;
                        }
                        LinkTarget::Endpoint { endpoint, port } => {
                            let (fwd_o, rev_o, _) = eng.stage_wires[s][r][b].advance(
                                router_out[s][r].bwd[b],
                                ep_drive[endpoint].in_rev[port],
                                false,
                            );
                            eng.ep_in_fwd[endpoint][port] = fwd_o;
                            eng.rev_in[s][r][b] = rev_o;
                            eng.bcb_in[s][r][b] = false;
                        }
                    }
                }
            }
        }
    }

    /// Sync telemetry, then harvest completed transactions (shared by
    /// both engines).
    fn after_tick(&mut self) {
        let every = self.registry.interval();
        if every <= 1 || self.now.is_multiple_of(every) {
            for (s, stage) in self.routers.iter().enumerate() {
                for (r, router) in stage.iter().enumerate() {
                    self.registry.sync_slot(s, r, router.counters());
                }
            }
            self.registry.finish_sync();
            if let Some(trace) = &mut self.trace {
                trace.observe(self.now, self.registry.deltas());
            }
        }
        self.now += 1;
        for e in 0..self.endpoints.len() {
            if !self.endpoints[e].has_outcomes() {
                continue;
            }
            for o in self.endpoints[e].take_completed() {
                if let Some(trace) = &mut self.trace {
                    trace.record_completion(self.now, o.src, o.dest, o.retries);
                }
                if o.requested_at >= self.stats_from {
                    let payload = o.payload_delivered.len().max(self.payload_words_hint(&o));
                    self.stats.record(&o, payload);
                }
                self.outcomes.push(o);
            }
            for o in self.endpoints[e].take_abandoned() {
                self.stats.record_abandoned(&o);
                self.outcomes.push(o);
            }
        }
        if self.config.self_heal {
            self.process_evidence();
        }
    }

    fn payload_words_hint(&self, o: &MessageOutcome) -> usize {
        // The NIC records the transmitted payload length in the
        // outcome, so throughput accounting holds even when the
        // destination-side capture (`payload_delivered`) is skipped.
        o.payload_words
    }

    /// Runs the clock for `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Drains all completed (and abandoned) outcomes harvested so far.
    pub fn drain_outcomes(&mut self) -> Vec<MessageOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Whether every endpoint is idle (no queued or in-flight
    /// messages).
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.endpoints.iter().all(|e| !e.is_busy())
    }

    /// Whether the fabric itself holds **zero** state: every router
    /// port idle with no backward port allocated, every wire quiet.
    /// This is the paper's §2 "stateless network" property — "no
    /// messages ever exist solely in the network", so a gang-scheduled
    /// machine can context-switch without snapshotting network state.
    #[must_use]
    pub fn fabric_idle(&self) -> bool {
        let routers_idle = self.routers.iter().enumerate().all(|(s, stage)| {
            stage.iter().enumerate().all(|(r, router)| {
                let ports_idle = (0..self.topo.stage_spec(s).forward_ports)
                    .all(|f| router.port_status(f) == metro_core::PortStatus::Idle);
                let _ = r;
                ports_idle && router.in_use_vector().iter().all(|&u| !u)
            })
        });
        let wires_quiet = match &self.engine {
            EngineState::Flat(eng) => eng
                .inj_wires
                .iter()
                .chain(eng.stage_wires.iter())
                .all(Wire::is_quiet),
            EngineState::Reference(eng) => eng
                .inj_wires
                .iter()
                .flatten()
                .chain(eng.stage_wires.iter().flatten().flatten())
                .all(Wire::is_quiet),
        };
        routers_idle && wires_quiet
    }

    /// Direct access to an endpoint (for workload injection and
    /// delivery inspection).
    pub fn endpoint_mut(&mut self, e: usize) -> &mut Endpoint {
        &mut self.endpoints[e]
    }

    /// Direct access to a router (for scan operations and fault
    /// experiments).
    pub fn router_mut(&mut self, stage: usize, index: usize) -> &mut Router {
        &mut self.routers[stage][index]
    }

    /// Shared access to a router.
    #[must_use]
    pub fn router(&self, stage: usize, index: usize) -> &Router {
        &self.routers[stage][index]
    }

    /// Applies a fault set: dead routers stop switching, faulty links
    /// die or corrupt, dead endpoints fall silent. Takes effect from
    /// the next tick (dynamic fault injection).
    pub fn apply_faults(&mut self, faults: FaultSet) {
        for e in 0..self.endpoints.len() {
            self.endpoints[e].set_dead(faults.endpoint_dead(e));
        }
        self.faults = faults;
        // The flat engine resolves the fault set into its flat tables
        // here, once, instead of querying it every tick.
        if let EngineState::Flat(eng) = &mut self.engine {
            for s in 0..self.topo.stages() {
                for r in 0..self.topo.routers_in_stage(s) {
                    eng.router_dead[eng.links.router_index(s, r)] = self.faults.router_dead(s, r);
                    for b in 0..self.topo.stage_spec(s).backward_ports {
                        eng.stage_wires[eng.links.bslot(s, r, b)]
                            .set_fault(self.faults.link_fault(LinkId::new(s, r, b)));
                    }
                }
            }
            // Transparency follows the fault set; refresh the cached
            // flags in the same pass.
            for (t, w) in eng.stage_transparent.iter_mut().zip(&eng.stage_wires) {
                *t = w.is_transparent();
            }
        }
    }

    /// The active fault set.
    #[must_use]
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Turns the self-healing loop on or off at runtime (see
    /// [`SimConfig::self_heal`]). Turning it off also drops any
    /// not-yet-processed evidence; applied masks stay in force.
    pub fn set_self_heal(&mut self, on: bool) {
        self.config.self_heal = on;
        for e in &mut self.endpoints {
            e.set_collect_evidence(on);
        }
    }

    /// Links the self-healing layer has masked so far (both port ends
    /// disabled), in masking order. Diagnosis-driven: derived from
    /// reply evidence and behavioral wire probes, never from the
    /// injected fault set.
    #[must_use]
    pub fn healed_links(&self) -> &[LinkId] {
        &self.healed_links
    }

    /// Injection ports the self-healing layer has masked at their
    /// endpoints, as `(endpoint, output_port)` pairs.
    #[must_use]
    pub fn healed_injections(&self) -> &[(usize, usize)] {
        &self.healed_injections
    }

    /// Drains the endpoints' failed-attempt evidence and runs each item
    /// through diagnosis and masking.
    fn process_evidence(&mut self) {
        let mut evidence: Vec<AttemptEvidence> = Vec::new();
        for e in &mut self.endpoints {
            evidence.extend(e.take_evidence());
        }
        for ev in &evidence {
            self.heal_from(ev);
        }
    }

    /// Runs one piece of failed-attempt evidence through the scan
    /// diagnosis ([`diagnose_attempt`]) and applies any resulting mask
    /// to the live router configurations — the paper's §5.3 loop
    /// (detect → localize → disable) closed online, while the network
    /// carries traffic.
    fn heal_from(&mut self, ev: &AttemptEvidence) {
        // Any failed attempt arriving after the first mask counts as a
        // post-masking retry, attributed to the entry router.
        if !self.healed_links.is_empty() || !self.healed_injections.is_empty() {
            let (r0, _) = self.topo.injection(ev.src, ev.port);
            self.routers[0][r0].note_event(RouterCounter::RetriesAfterMask);
        }
        // Blocking and fast reclamation are congestion, not faults.
        if matches!(
            ev.kind,
            FailureKind::Blocked { .. } | FailureKind::FastReclaimed
        ) {
            return;
        }

        // Reconstruct the path the attempt switched: entry router from
        // the injection map, then one hop per STATUS-reported backward
        // port.
        let mut ports_taken = Vec::with_capacity(ev.record.statuses.len());
        for s in &ev.record.statuses {
            match s.port() {
                Some(p) => ports_taken.push(p),
                None => break,
            }
        }
        let (entry, f0) = self.topo.injection(ev.src, ev.port);
        let mut routers_on_path = vec![entry];
        let mut fwd_ports = vec![f0];
        for (s, &b) in ports_taken.iter().enumerate() {
            match self.topo.link(s, routers_on_path[s], b) {
                LinkTarget::Router { router, port } => {
                    routers_on_path.push(router);
                    fwd_ports.push(port);
                }
                LinkTarget::Endpoint { .. } => break,
            }
        }

        // Expected transit checksums, recomputed from what the NIC
        // actually sent (the source knows its own stream).
        let digits = self.topo.route_digits(ev.dest);
        let header_len = self.plan.pack(&digits).len().min(ev.stream.len());
        let payload: Vec<u16> = ev.stream[header_len..]
            .iter()
            .filter_map(|w| match w {
                Word::Data(v) => Some(*v),
                _ => None,
            })
            .collect();
        let expected = expected_stage_checksums(
            &self.plan,
            &digits,
            &payload,
            self.config.width,
            self.config.header_words,
        );
        let delivery_failed = matches!(ev.kind, FailureKind::Corrupt | FailureKind::NoAck);
        match diagnose_attempt(
            &expected,
            &ev.record.checksums,
            &ports_taken,
            &fwd_ports,
            delivery_failed,
        ) {
            AttemptDiagnosis::Corruption(plan) => {
                let ds = plan.downstream_stage;
                if ds < routers_on_path.len() {
                    let dr = routers_on_path[ds];
                    self.routers[ds][dr].note_event(RouterCounter::ChecksumMismatches);
                    match (plan.upstream_stage, plan.upstream_backward_port) {
                        (Some(us), Some(ub)) => {
                            self.mask_link_ends(us, routers_on_path[us], ub);
                        }
                        _ => self.mask_injection(ev.src, ev.port),
                    }
                }
            }
            AttemptDiagnosis::DeliveryBoundary {
                stage,
                backward_port,
            } => {
                // ACK_CORRUPT is the destination's end-to-end checksum
                // catching the corruption past the last transit
                // checksum — count it where it was detected.
                if stage < routers_on_path.len() {
                    let r = routers_on_path[stage];
                    self.routers[stage][r].note_event(RouterCounter::ChecksumMismatches);
                    self.mask_link_ends(stage, r, backward_port);
                }
            }
            AttemptDiagnosis::NeedsSweep => self.sweep_and_mask(ev),
            AttemptDiagnosis::Inconclusive => {}
        }
    }

    /// Disables both port ends of the link out of `(stage, router)`'s
    /// backward port `b` in the live configurations (paper §5.1:
    /// "Disabled faults are masked"). Refuses to sever an endpoint's
    /// last unmasked delivery link — redundancy, not reachability, is
    /// what masking spends. Idempotent per link.
    fn mask_link_ends(&mut self, stage: usize, router: usize, b: usize) {
        let link = LinkId::new(stage, router, b);
        if self.healed_links.contains(&link) {
            return;
        }
        if let LinkTarget::Endpoint { endpoint, .. } = self.topo.link(stage, router, b) {
            if self.delivery_links_left(endpoint) <= 1 {
                return;
            }
        }
        let mut cfg = self.routers[stage][router].config().clone();
        cfg.set_backward_mode(b, PortMode::DisabledDriven);
        self.routers[stage][router].apply_config(cfg);
        if let LinkTarget::Router { router: dr, port } = self.topo.link(stage, router, b) {
            let mut cfg = self.routers[stage + 1][dr].config().clone();
            cfg.set_forward_mode(port, PortMode::DisabledDriven);
            self.routers[stage + 1][dr].apply_config(cfg);
        }
        self.healed_links.push(link);
    }

    /// Masks one endpoint injection port (the endpoint refuses to mask
    /// its last unmasked port).
    fn mask_injection(&mut self, endpoint: usize, port: usize) {
        if self.endpoints[endpoint].mask_out_port(port)
            && !self.healed_injections.contains(&(endpoint, port))
        {
            self.healed_injections.push((endpoint, port));
        }
    }

    /// How many delivery links into `endpoint` the healer has not yet
    /// masked.
    fn delivery_links_left(&self, endpoint: usize) -> usize {
        let s = self.topo.stages() - 1;
        let mut left = 0;
        for r in 0..self.topo.routers_in_stage(s) {
            for b in 0..self.topo.stage_spec(s).backward_ports {
                let to_endpoint = matches!(
                    self.topo.link(s, r, b),
                    LinkTarget::Endpoint { endpoint: e, .. } if e == endpoint
                );
                if to_endpoint && !self.healed_links.contains(&LinkId::new(s, r, b)) {
                    left += 1;
                }
            }
        }
        left
    }

    /// No reversal evidence at all: a dead element ate the stream.
    /// Sweeps every inter-stage wire with the boundary-scan test
    /// vectors (paper §5.1 — vectors across the suspect wires while the
    /// rest of the network carries traffic) and masks the links that
    /// fail. When every wire passes and the entry port itself never
    /// showed life, the silent element is the first hop: the endpoint
    /// stops injecting there.
    fn sweep_and_mask(&mut self, ev: &AttemptEvidence) {
        let mut found = Vec::new();
        for s in 0..self.topo.stages() {
            for r in 0..self.topo.routers_in_stage(s) {
                for b in 0..self.topo.stage_spec(s).backward_ports {
                    if self.healed_links.contains(&LinkId::new(s, r, b)) {
                        continue;
                    }
                    if !self.probe_wire_passes(s, r, b) {
                        found.push((s, r, b));
                    }
                }
            }
        }
        if found.is_empty() {
            if !ev.entry_alive {
                self.mask_injection(ev.src, ev.port);
            }
            return;
        }
        for (s, r, b) in found {
            self.mask_link_ends(s, r, b);
        }
    }

    /// Behaviorally probes one inter-stage wire with the boundary-scan
    /// test vectors (paper §5.1 EXTEST): each vector is driven through
    /// a clone of the wire as a data word and the emerging word
    /// compared against what was driven. The clone leaves live traffic
    /// untouched; the flush models the port pair being quiesced before
    /// the test. No oracle: the verdict comes from the wire's observed
    /// behavior, not the fault set.
    fn probe_wire_passes(&self, s: usize, r: usize, b: usize) -> bool {
        let mut probe = match &self.engine {
            EngineState::Flat(eng) => eng.stage_wires[eng.links.bslot(s, r, b)].clone(),
            EngineState::Reference(eng) => eng.stage_wires[s][r][b].clone(),
        };
        probe.flush();
        let w = self.config.width.min(16);
        test_wire(w, |bits| {
            let value = bits
                .iter()
                .enumerate()
                .fold(0u16, |acc, (i, &bit)| acc | (u16::from(bit) << i));
            let (mut out, _, _) = probe.advance(Word::Data(value), Word::Empty, false);
            for _ in 0..probe.delay() {
                if out != Word::Empty {
                    break;
                }
                out = probe.advance(Word::Empty, Word::Empty, false).0;
            }
            match out {
                Word::Data(v) => (0..w).map(|i| (v >> i) & 1 == 1).collect(),
                _ => vec![false; w],
            }
        })
        .passed()
    }

    /// Statistics accumulated since the last [`NetworkSim::reset_stats`].
    #[must_use]
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Mutable statistics access (percentile queries sort lazily).
    pub fn stats_mut(&mut self) -> &mut NetworkStats {
        &mut self.stats
    }

    /// Clears statistics; only messages *requested* from now on are
    /// counted (warmup exclusion). The telemetry registry is rebased so
    /// every slot reads zero — subsequent syncs measure post-reset
    /// activity only — while the routers keep their cumulative
    /// counters.
    pub fn reset_stats(&mut self) {
        self.stats = NetworkStats::new();
        self.stats_from = self.now;
        self.registry.rebase();
    }

    /// Sums a per-router statistic over every router in the network.
    #[must_use]
    pub fn router_stat_total(&self, f: impl Fn(&metro_core::router::RouterStats) -> u64) -> u64 {
        self.routers.iter().flatten().map(|r| f(&r.stats())).sum()
    }

    /// Freezes the current telemetry into a schema-versioned snapshot:
    /// registry counters brought up to date with the live router cells
    /// (without disturbing the sync cadence), the total-latency
    /// summary, and the decimated series.
    pub fn telemetry_snapshot(&mut self, name: &str) -> TelemetrySnapshot {
        // Sync a clone so deltas/series keep their interval semantics
        // for the ongoing run; snapshots are a cold path.
        let mut reg = self.registry.clone();
        for (s, stage) in self.routers.iter().enumerate() {
            for (r, router) in stage.iter().enumerate() {
                reg.sync_slot(s, r, router.counters());
            }
        }
        let latency = self.stats.total_latency.summary();
        let engine = match self.config.engine {
            EngineKind::Flat => "flat",
            EngineKind::Reference => "reference",
        };
        TelemetrySnapshot::from_registry(name, engine, self.now, &reg, latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ACK_OK;
    use metro_telemetry::RouterCounter;

    fn fig1_sim() -> NetworkSim {
        NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap()
    }

    #[test]
    fn single_message_delivers_intact() {
        let mut sim = fig1_sim();
        let payload: Vec<u16> = (0..19).map(|k| (k * 7 + 1) as u16 & 0xFF).collect();
        let outcome = sim.send_and_wait(3, 12, &payload, 400).expect("delivery");
        assert_eq!(outcome.payload_delivered, payload);
        assert_eq!(outcome.retries, 0);
        assert!(outcome.failures.is_empty());
    }

    #[test]
    fn every_endpoint_pair_communicates() {
        let mut sim = fig1_sim();
        for src in 0..16 {
            let dest = (src + 7) % 16;
            let payload = [src as u16, dest as u16];
            let o = sim
                .send_and_wait(src, dest, &payload, 400)
                .unwrap_or_else(|| panic!("{src} -> {dest} failed"));
            assert_eq!(o.payload_delivered, payload);
        }
    }

    #[test]
    fn unloaded_latency_is_stable_and_small() {
        let mut sim = fig1_sim();
        let payload = [1u16; 19];
        let a = sim.send_and_wait(0, 9, &payload, 400).unwrap();
        let b = sim.send_and_wait(0, 9, &payload, 400).unwrap();
        assert_eq!(a.network_latency(), b.network_latency());
        // Figure 3's deeper network measures 28 cycles; this 3-stage,
        // 16-endpoint network with 19-word payloads should be in the
        // same regime (stream ~22 words + ~6 cycles turnaround).
        assert!(
            (25..40).contains(&(a.network_latency() as usize)),
            "unloaded latency {} out of expected range",
            a.network_latency()
        );
    }

    #[test]
    fn ack_code_round_trips() {
        let mut sim = fig1_sim();
        sim.send(2, 11, &[9, 9, 9]);
        sim.run(300);
        let outs = sim.drain_outcomes();
        assert_eq!(outs.len(), 1);
        // The record captured ACK_OK (success path).
        assert!(outs[0].failures.is_empty());
        let _ = ACK_OK;
    }

    #[test]
    fn concurrent_messages_all_deliver() {
        let mut sim = fig1_sim();
        for src in 0..16 {
            sim.send(src, (src + 5) % 16, &[src as u16; 8]);
        }
        let mut cycles = 0;
        while !sim.is_quiescent() && cycles < 5000 {
            sim.tick();
            cycles += 1;
        }
        let outs = sim.drain_outcomes();
        assert_eq!(outs.len(), 16, "all 16 messages must complete");
        for o in &outs {
            assert!(o.total_latency() < 2000);
        }
    }

    #[test]
    fn contention_causes_retries_but_no_loss() {
        let mut sim = fig1_sim();
        // Everyone hammers endpoint 0: heavy contention at the last
        // stages; stochastic retry must eventually deliver all.
        for src in 1..16 {
            sim.send(src, 0, &[src as u16; 4]);
        }
        let mut cycles = 0;
        while !sim.is_quiescent() && cycles < 20_000 {
            sim.tick();
            cycles += 1;
        }
        let outs = sim.drain_outcomes();
        assert_eq!(outs.len(), 15);
        let total_retries: usize = outs.iter().map(|o| o.retries).sum();
        assert!(total_retries > 0, "hotspot must cause blocking/retry");
    }

    #[test]
    fn dead_router_is_routed_around() {
        let mut sim = fig1_sim();
        let mut faults = FaultSet::new();
        faults.kill_router(1, 2);
        sim.apply_faults(faults);
        for src in 0..16 {
            let o = sim.send_and_wait(src, (src + 3) % 16, &[7, 7], 3000);
            assert!(o.is_some(), "src {src} failed around dead router");
        }
    }

    #[test]
    fn corrupting_link_is_detected_and_avoided() {
        let mut sim = fig1_sim();
        // Corrupt one of endpoint 4's route's stage-0 links.
        let digits = sim.topology().route_digits(9);
        let (r0, _) = sim.topology().injection(4, 0);
        let st0 = sim.topology().stage_spec(0);
        let mut faults = FaultSet::new();
        faults.break_link(
            LinkId::new(0, r0, digits[0] * st0.dilation),
            metro_topo::fault::FaultKind::CorruptData { xor: 0x04 },
        );
        sim.apply_faults(faults);
        let o = sim
            .send_and_wait(4, 9, &[1, 2, 3, 4], 4000)
            .expect("delivered");
        assert_eq!(o.payload_delivered, vec![1, 2, 3, 4]);
    }

    #[test]
    fn detailed_reclamation_reports_blocked_stage() {
        let config = SimConfig {
            fast_reclaim: false,
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
        for src in 1..16 {
            sim.send(src, 0, &[1, 2]);
        }
        let mut cycles = 0;
        while !sim.is_quiescent() && cycles < 30_000 {
            sim.tick();
            cycles += 1;
        }
        let outs = sim.drain_outcomes();
        assert_eq!(outs.len(), 15);
        let blocked = outs
            .iter()
            .flat_map(|o| &o.failures)
            .filter(|f| matches!(f, crate::message::FailureKind::Blocked { .. }))
            .count();
        assert!(blocked > 0, "detailed mode must report Blocked failures");
    }

    #[test]
    fn figure3_network_simulates() {
        let mut sim =
            NetworkSim::new(&MultibutterflySpec::figure3(), &SimConfig::default()).unwrap();
        let payload: Vec<u16> = (0..19).map(|k| k as u16).collect();
        let o = sim.send_and_wait(0, 63, &payload, 500).expect("delivery");
        assert_eq!(o.payload_delivered, payload);
        // Paper: "The unloaded message latency is 28 clock cycles from
        // message injection to acknowledgment receipt."
        assert!(
            (24..36).contains(&(o.network_latency() as usize)),
            "figure 3 unloaded latency {} should be near 28",
            o.network_latency()
        );
    }

    #[test]
    fn heterogeneous_wire_delays_deliver_with_expected_latency() {
        // Short wires near the endpoints, a long middle boundary — the
        // §5.1 variable-turn-delay scenario.
        let config = SimConfig {
            stage_wire_delays: Some(vec![0, 3, 1, 0]),
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
        let o = sim.send_and_wait(0, 9, &[4; 10], 2_000).expect("delivery");
        assert_eq!(o.payload_delivered, vec![4; 10]);
        // Baseline with all-zero wires for comparison.
        let mut base =
            NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
        let b = base.send_and_wait(0, 9, &[4; 10], 2_000).unwrap();
        // Extra round-trip cost ≈ 2 × (3 + 1) = 8 cycles.
        let delta = o.network_latency() as i64 - b.network_latency() as i64;
        assert!(
            (6..=12).contains(&delta),
            "expected ~8 extra cycles, got {delta}"
        );
    }

    #[test]
    #[should_panic(expected = "stages + 1")]
    fn wrong_boundary_count_is_rejected() {
        let config = SimConfig {
            stage_wire_delays: Some(vec![0, 1]),
            ..SimConfig::default()
        };
        let _ = NetworkSim::new(&MultibutterflySpec::figure1(), &config);
    }

    #[test]
    fn extra_stage_randomizer_network_delivers() {
        let mut sim = NetworkSim::new(
            &MultibutterflySpec::figure3_extra_stage(),
            &SimConfig::default(),
        )
        .unwrap();
        // The radix-1 front stage consumes no digits; the header plan
        // still packs 6 bits into one byte.
        assert_eq!(sim.header_plan().header_words(), 1);
        for dest in [0, 21, 63] {
            let payload = [dest as u16, 0xAA];
            let o = sim.send_and_wait(5, dest, &payload, 2_000);
            match o {
                Some(o) => assert_eq!(o.payload_delivered, payload, "dest {dest}"),
                None => panic!("dest {dest} failed"),
            }
        }
        // The extra stage adds one hop to the unloaded path.
        let base = {
            let mut b =
                NetworkSim::new(&MultibutterflySpec::figure3(), &SimConfig::default()).unwrap();
            b.send_and_wait(5, 60, &[1; 19], 2_000)
                .unwrap()
                .network_latency()
        };
        let extra = sim
            .send_and_wait(5, 60, &[1; 19], 2_000)
            .unwrap()
            .network_latency();
        assert!(
            (1..=4).contains(&(extra as i64 - base as i64)),
            "one extra hop, got {base} -> {extra}"
        );
    }

    #[test]
    fn conversation_reverses_the_circuit_multiple_times() {
        use crate::endpoint::{EndpointConfig, ReplyPolicy};
        let config = SimConfig {
            endpoint: EndpointConfig {
                reply: ReplyPolicy::Conversation,
                ..EndpointConfig::default()
            },
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
        let segments: [&[u16]; 3] = [&[1, 2, 3], &[4, 5], &[6, 7, 8, 9]];
        sim.send_conversation(2, 13, &segments);
        let mut cycles = 0;
        while !sim.is_quiescent() && cycles < 3_000 {
            sim.tick();
            cycles += 1;
        }
        let outs = sim.drain_outcomes();
        assert_eq!(outs.len(), 1, "conversation must complete");
        assert_eq!(outs[0].retries, 0);
        // Every segment arrived intact, in order, at the destination.
        let delivered = sim.endpoint_mut(13).take_delivered();
        assert_eq!(delivered.len(), 3);
        for (d, seg) in delivered.iter().zip(segments.iter()) {
            assert_eq!(&d.payload[..], *seg);
        }
        // One grant per stage for the whole conversation (a single
        // circuit), but three forward reversals per stage (one per
        // segment's TURN).
        let grants = sim.router_stat_total(|s| s.grants);
        let turns = sim.router_stat_total(|s| s.turns);
        assert_eq!(grants, 3, "one circuit");
        assert_eq!(turns, 9, "three reversals per router");
    }

    #[test]
    fn conversation_under_congestion_retries_whole_exchange() {
        use crate::endpoint::{EndpointConfig, ReplyPolicy};
        let config = SimConfig {
            endpoint: EndpointConfig {
                reply: ReplyPolicy::Conversation,
                ..EndpointConfig::default()
            },
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
        for src in 0..8 {
            let a: &[u16] = &[src as u16];
            let b: &[u16] = &[src as u16 + 100];
            sim.send_conversation(src, 15, &[a, b]);
        }
        let mut cycles = 0;
        while !sim.is_quiescent() && cycles < 60_000 {
            sim.tick();
            cycles += 1;
        }
        let outs = sim.drain_outcomes();
        assert_eq!(outs.len(), 8, "all conversations must complete");
        // 8 sources × 2 segments each delivered.
        assert_eq!(sim.endpoint_mut(15).take_delivered().len(), 16);
    }

    #[test]
    fn trace_records_the_connection_lifecycle() {
        let mut sim = fig1_sim();
        sim.enable_trace(0);
        sim.send_and_wait(0, 9, &[1, 2, 3], 400).expect("delivery");
        let trace = sim.trace().unwrap();
        use crate::trace::TraceEvent;
        let grants = trace.of_kind(|e| matches!(e, TraceEvent::Granted { .. }));
        let turns = trace.of_kind(|e| matches!(e, TraceEvent::Turned { .. }));
        let drops = trace.of_kind(|e| matches!(e, TraceEvent::Dropped { .. }));
        let done = trace.of_kind(|e| matches!(e, TraceEvent::Completed { .. }));
        assert_eq!(grants.len(), 3, "one grant per stage");
        assert_eq!(turns.len(), 3, "one reversal per stage");
        assert_eq!(drops.len(), 3, "one release per stage");
        assert_eq!(done.len(), 1);
        // Lifecycle ordering: grants strictly before turns before drops.
        assert!(grants.iter().map(|r| r.at).max() < turns.iter().map(|r| r.at).min());
        assert!(turns.iter().map(|r| r.at).max() < drops.iter().map(|r| r.at).min());
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut sim = fig1_sim();
            for src in 0..16 {
                sim.send(src, (src + 9) % 16, &[3; 6]);
            }
            sim.run(600);
            let mut outs = sim.drain_outcomes();
            outs.sort_by_key(|o| (o.src, o.completed_at));
            outs.iter()
                .map(|o| (o.src, o.dest, o.completed_at, o.retries))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pipelined_setup_hw1_works_end_to_end() {
        let config = SimConfig {
            header_words: 1,
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
        let o = sim.send_and_wait(1, 14, &[5, 6, 7], 500).expect("delivery");
        assert_eq!(o.payload_delivered, vec![5, 6, 7]);
    }

    #[test]
    fn deeper_pipelines_still_deliver() {
        let config = SimConfig {
            pipestages: 2,
            wire_delay: 1,
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
        let o = sim.send_and_wait(6, 2, &[8; 10], 800).expect("delivery");
        assert_eq!(o.payload_delivered, vec![8; 10]);
        // Latency grows with the extra pipeline depth.
        assert!(o.network_latency() > 30);
    }

    #[test]
    fn reset_stats_zeroes_every_registry_slot() {
        let mut sim = fig1_sim();
        for src in 0..16 {
            sim.send(src, (src + 3) % 16, &[src as u16; 6]);
        }
        sim.run(300);
        let total_before = sim.telemetry().counters().total(RouterCounter::Opens);
        assert!(total_before > 0, "traffic must register");

        sim.reset_stats();
        let reg = sim.telemetry();
        for ((stage, router), cell) in reg.counters().iter() {
            assert!(
                cell.is_zero(),
                "registry slot r{stage}.{router} not zeroed by reset_stats"
            );
        }
        for ((stage, router), cell) in reg.deltas().iter() {
            assert!(
                cell.is_zero(),
                "delta slot r{stage}.{router} survived reset"
            );
        }
        assert_eq!(reg.syncs(), 0, "series history restarts");

        // Routers keep cumulative counters — the registry rebases so
        // post-reset observation measures only post-reset traffic.
        sim.send(0, 9, &[1, 2, 3]);
        sim.run(300);
        let opens_after = sim.telemetry().counters().total(RouterCounter::Opens);
        assert!(opens_after > 0 && opens_after < total_before);
    }

    #[test]
    fn trace_interval_zero_clamps_to_every_cycle() {
        let mut sim = fig1_sim();
        sim.set_trace_interval(0);
        assert_eq!(sim.telemetry().interval(), 1, "0 clamps to 1");
        sim.enable_trace(0);
        sim.send(4, 13, &[7; 5]);
        sim.run(300);
        let grants = sim
            .trace()
            .unwrap()
            .of_kind(|e| matches!(e, crate::trace::TraceEvent::Granted { .. }));
        assert!(!grants.is_empty(), "tracing still observes events");
    }

    #[test]
    fn telemetry_snapshot_leaves_registry_cadence_undisturbed() {
        let mut sim = fig1_sim();
        sim.send(2, 8, &[3; 4]);
        sim.run(200);
        let syncs_before = sim.telemetry().syncs();
        let snap = sim.telemetry_snapshot("probe");
        assert_eq!(snap.cycles, sim.now());
        assert!(snap.counters.total(RouterCounter::Opens) > 0);
        // Snapshotting syncs a clone: the live registry's sync count and
        // deltas are untouched.
        assert_eq!(sim.telemetry().syncs(), syncs_before);
    }

    #[test]
    fn self_healing_masks_a_corrupting_link_from_evidence_alone() {
        let config = SimConfig {
            self_heal: true,
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
        // Corrupt one of endpoint 4's route's stage-0 links; the healer
        // only ever sees the reply evidence, never this fault set.
        let digits = sim.topology().route_digits(9);
        let (r0, _) = sim.topology().injection(4, 0);
        let bad = LinkId::new(0, r0, digits[0] * sim.topology().stage_spec(0).dilation);
        let mut faults = FaultSet::new();
        faults.break_link(bad, metro_topo::fault::FaultKind::CorruptData { xor: 0x04 });
        sim.apply_faults(faults);
        for _ in 0..20 {
            let o = sim
                .send_and_wait(4, 9, &[1, 2, 3, 4], 4000)
                .expect("delivered despite the corrupting link");
            assert_eq!(o.payload_delivered, vec![1, 2, 3, 4]);
            if sim.healed_links().contains(&bad) {
                break;
            }
        }
        assert!(
            sim.healed_links().contains(&bad),
            "diagnosis must name the faulted link, healed {:?}",
            sim.healed_links()
        );
        // The loop's work shows up in the telemetry spine: a mismatch
        // detected, both port ends masked, and the masked state exercised
        // by later retries.
        let snap = sim.telemetry_snapshot("heal");
        assert!(snap.counters.total(RouterCounter::ChecksumMismatches) > 0);
        assert!(snap.counters.total(RouterCounter::MasksApplied) >= 2);
        // Traffic keeps flowing after the mask.
        let o = sim
            .send_and_wait(4, 9, &[9, 8, 7], 4000)
            .expect("delivered");
        assert_eq!(o.payload_delivered, vec![9, 8, 7]);
    }

    #[test]
    fn self_healing_masks_a_dead_link_where_the_trail_goes_cold() {
        let config = SimConfig {
            self_heal: true,
            endpoint: EndpointConfig {
                timeout: 120,
                ..EndpointConfig::default()
            },
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
        let digits = sim.topology().route_digits(9);
        let (r0, _) = sim.topology().injection(4, 0);
        let bad = LinkId::new(0, r0, digits[0] * sim.topology().stage_spec(0).dilation);
        let mut faults = FaultSet::new();
        faults.break_link(bad, metro_topo::fault::FaultKind::Dead);
        sim.apply_faults(faults);
        // A dead link eats the forward stream, but the routers before
        // it still reverse and report clean status + checksums — the
        // trail simply goes cold (`NoAck` with truncated evidence).
        // Diagnosis pins the fault on the link past the last reporting
        // router and masks exactly the dead link.
        for _ in 0..10 {
            let o = sim
                .send_and_wait(4, 9, &[5, 6], 8000)
                .expect("retries route around the dead link");
            assert_eq!(o.payload_delivered, vec![5, 6]);
            if sim.healed_links().contains(&bad) {
                break;
            }
        }
        assert!(
            sim.healed_links().contains(&bad),
            "diagnosis must localize the dead link, healed {:?}",
            sim.healed_links()
        );
    }

    #[test]
    fn self_healing_masks_the_injection_port_into_a_dead_entry_router() {
        let config = SimConfig {
            self_heal: true,
            endpoint: EndpointConfig {
                timeout: 120,
                ..EndpointConfig::default()
            },
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
        let (r0, _) = sim.topology().injection(4, 0);
        let mut faults = FaultSet::new();
        faults.kill_router(0, r0);
        sim.apply_faults(faults);
        // A dead entry router swallows the stream before any status word
        // is generated: the record is empty and no reverse activity is
        // ever seen. The wire sweep finds every link electrically sound,
        // so the only remaining suspect is the injection port itself.
        for _ in 0..10 {
            let o = sim
                .send_and_wait(4, 9, &[7, 7], 8000)
                .expect("retries route around the dead entry router");
            assert_eq!(o.payload_delivered, vec![7, 7]);
            if sim.healed_injections().contains(&(4, 0)) {
                break;
            }
        }
        assert!(
            sim.healed_injections().contains(&(4, 0)),
            "the sweep must fall back to masking the injection port, healed {:?}",
            sim.healed_injections()
        );
        assert!(
            sim.healed_links().is_empty(),
            "no inter-stage link is actually faulty, healed {:?}",
            sim.healed_links()
        );
    }

    #[test]
    fn self_healing_is_engine_equivalent() {
        let run = |engine: EngineKind| {
            let config = SimConfig {
                self_heal: true,
                endpoint: EndpointConfig {
                    timeout: 150,
                    ..EndpointConfig::default()
                },
                engine,
                ..SimConfig::default()
            };
            let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
            let mut faults = FaultSet::new();
            faults.break_link(
                LinkId::new(1, 2, 1),
                metro_topo::fault::FaultKind::CorruptData { xor: 0x11 },
            );
            faults.break_link(LinkId::new(0, 5, 2), metro_topo::fault::FaultKind::Dead);
            sim.apply_faults(faults);
            for src in 0..16 {
                sim.send(src, (src + 11) % 16, &[src as u16; 5]);
            }
            sim.run(6_000);
            let mut outs: Vec<_> = sim
                .drain_outcomes()
                .iter()
                .map(|o| (o.src, o.dest, o.completed_at, o.retries, o.status))
                .collect();
            outs.sort_unstable();
            (outs, sim.healed_links().to_vec())
        };
        let flat = run(EngineKind::Flat);
        let reference = run(EngineKind::Reference);
        assert_eq!(flat.0, reference.0, "outcome streams must match");
        assert_eq!(flat.1, reference.1, "healing decisions must match");
    }

    #[test]
    fn unreachable_destination_exhausts_attempts_and_quiesces() {
        use crate::message::DeliveryStatus;
        // A dead destination can never acknowledge: without an attempt
        // budget the source would retry forever (the livelock case the
        // give-up path exists for).
        let config = SimConfig {
            endpoint: EndpointConfig {
                timeout: 120,
                max_retries: 3,
                ..EndpointConfig::default()
            },
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
        let mut faults = FaultSet::new();
        faults.kill_endpoint(9);
        sim.apply_faults(faults);
        sim.send(4, 9, &[1, 2]);
        let mut cycles = 0;
        while !sim.is_quiescent() && cycles < 30_000 {
            sim.tick();
            cycles += 1;
        }
        assert!(
            sim.is_quiescent(),
            "the attempt budget must end the livelock"
        );
        let outs = sim.drain_outcomes();
        assert_eq!(outs.len(), 1, "the give-up is an outcome, not a loss");
        match outs[0].status {
            DeliveryStatus::Undeliverable { attempts } => assert_eq!(attempts, 3),
            DeliveryStatus::Delivered => panic!("cannot deliver to a dead endpoint"),
        }
        assert_eq!(outs[0].retries, 3);
    }
}
