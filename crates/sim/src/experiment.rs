//! Experiment harnesses: load sweeps (Figure 3) and fault sweeps
//! (§6.2's robust-degradation claim).
//!
//! # Per-point seeding
//!
//! A sweep is a set of *independent* simulations; each point derives
//! its own seed as `point_seed(cfg.seed, point_index)` — a SplitMix64
//! mix of the sweep's master seed and the point's position. This fixes
//! two problems the old scheme (every point reusing `cfg.seed`
//! verbatim) had:
//!
//! 1. **Cross-point correlation**: identical seeds meant every point
//!    saw the same arrival-phase pattern and the same destination
//!    stream prefix, so sampling noise was correlated across the whole
//!    curve instead of averaging out.
//! 2. **Order independence**: because a point's randomness is a pure
//!    function of `(master seed, index)`, points can run on any worker
//!    of [`metro_harness::par_map`] in any order and the sweep is
//!    bit-identical to a sequential run (asserted by
//!    `parallel_sweeps_match_sequential_bitwise`).
//!
//! Single-point entry points (`run_load_point`, `run_fault_point`) are
//! deliberately left on the verbatim seed: ablations compare variants
//! under *common* randomness (paired comparison), and callers that want
//! a derived seed can apply [`point_seed`] themselves.

use crate::endpoint::EndpointConfig;
use crate::network::{NetworkSim, SimConfig};
use crate::traffic::TrafficPattern;
use crate::workload::{ArrivalProcess, RateMap, StreamRecipe, StreamSeeds};
use metro_core::RandomSource;
use metro_harness::par_map;
use metro_telemetry::TelemetrySnapshot;
use metro_topo::fault::FaultSet;
use metro_topo::multibutterfly::MultibutterflySpec;
use metro_topo::paths::all_links;
use std::num::NonZeroUsize;

/// Derives the seed for sweep point `point_index` from the sweep's
/// master seed: SplitMix64 over `(seed, point_index)`. See the module
/// docs for why sweeps must not reuse one seed verbatim.
#[must_use]
pub fn point_seed(seed: u64, point_index: u64) -> u64 {
    // SplitMix64 (Steele et al.): one additive step per index keeps
    // distinct indices on distinct streams, and the finalizer decorrelates
    // neighbouring indices.
    let mut z = seed.wrapping_add(
        point_index
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of a measurement run.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Network topology.
    pub spec: MultibutterflySpec,
    /// Router/protocol implementation parameters.
    pub sim: SimConfig,
    /// Payload words per message (Figure 3: 20 bytes on an 8-bit
    /// channel → 19 payload words + 1 checksum word).
    pub payload_words: usize,
    /// Destination pattern.
    pub pattern: TrafficPattern,
    /// Arrival process at each endpoint.
    pub arrival: ArrivalProcess,
    /// Per-endpoint offered-load multipliers.
    pub rates: RateMap,
    /// Warmup cycles excluded from statistics.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Drain period after measurement so in-flight messages finish.
    pub drain: u64,
    /// Workload seed.
    pub seed: u64,
}

impl SweepConfig {
    /// The paper's Figure 3 experiment: the 64-endpoint 3-stage
    /// radix-4 network, 20-byte random traffic, parallelism-limited
    /// endpoints.
    #[must_use]
    pub fn figure3() -> Self {
        Self {
            spec: MultibutterflySpec::figure3(),
            sim: SimConfig::default(),
            payload_words: 19,
            pattern: TrafficPattern::Uniform,
            arrival: ArrivalProcess::Bernoulli,
            rates: RateMap::Uniform,
            warmup: 2_000,
            measure: 12_000,
            drain: 3_000,
            seed: 0xF163,
        }
    }

    /// A scaled-down variant for quick tests.
    #[must_use]
    pub fn small() -> Self {
        Self {
            spec: MultibutterflySpec::figure1(),
            sim: SimConfig::default(),
            payload_words: 19,
            pattern: TrafficPattern::Uniform,
            arrival: ArrivalProcess::Bernoulli,
            rates: RateMap::Uniform,
            warmup: 500,
            measure: 3_000,
            drain: 1_000,
            seed: 0x511,
        }
    }
}

/// One measured point of a latency-versus-load curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered load (fraction of injection capacity).
    pub offered: f64,
    /// Accepted throughput (delivered payload words / cycle /
    /// endpoint, normalized to capacity).
    pub accepted: f64,
    /// Mean total latency (request → acknowledgment), cycles.
    pub mean_latency: f64,
    /// Median total latency.
    pub p50_latency: u64,
    /// 95th-percentile total latency.
    pub p95_latency: u64,
    /// Mean network latency (injection → acknowledgment).
    pub mean_network_latency: f64,
    /// Mean retries per delivered message.
    pub retries_per_message: f64,
    /// Messages delivered in the measurement window.
    pub delivered: u64,
}

/// One measured point of a fault-degradation curve.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepPoint {
    /// Routers killed.
    pub dead_routers: usize,
    /// Links killed.
    pub dead_links: usize,
    /// Mean total latency, cycles.
    pub mean_latency: f64,
    /// 95th-percentile total latency.
    pub p95_latency: u64,
    /// Mean retries per delivered message.
    pub retries_per_message: f64,
    /// Accepted throughput (payload words / cycle / endpoint).
    pub accepted: f64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages abandoned.
    pub abandoned: u64,
}

/// Measures the unloaded round-trip latency of the configured network:
/// a single message between distant endpoints with nothing else in
/// flight (the Figure 3 caption's 28-cycle reference point).
#[must_use]
pub fn unloaded_latency(cfg: &SweepConfig) -> u64 {
    let mut sim = NetworkSim::new(&cfg.spec, &cfg.sim).expect("valid spec");
    let payload: Vec<u16> = (0..cfg.payload_words).map(|k| k as u16).collect();
    let n = sim.topology().endpoints();
    let outcome = sim
        .send_and_wait(0, n - 1, &payload, 10_000)
        .expect("unloaded message must deliver");
    outcome.network_latency()
}

/// Runs the load-point simulation to completion (warmup, measurement,
/// drain) and returns the sim plus the per-message stream length — the
/// single construction path behind [`run_load_point`] and its
/// telemetry-carrying variant.
fn run_load_sim(cfg: &SweepConfig, load: f64) -> (NetworkSim, usize) {
    let mut sim = NetworkSim::new(&cfg.spec, &cfg.sim).expect("valid spec");
    let n = sim.topology().endpoints();
    let stream_words = sim.stream_for(0, &vec![0; cfg.payload_words]).len();
    let recipe = StreamRecipe {
        arrival: &cfg.arrival,
        rates: &cfg.rates,
        pattern: &cfg.pattern,
        load,
        stream_words,
        payload_words: cfg.payload_words,
        endpoints: n,
        seeds: StreamSeeds::load(cfg.seed),
    };
    let mut driver = recipe.driver();
    let payload: Vec<u16> = (0..cfg.payload_words).map(|k| k as u16).collect();

    let total = cfg.warmup + cfg.measure;
    for cycle in 0..total {
        if cycle == cfg.warmup {
            sim.reset_stats();
        }
        driver.poll(cycle, |a| {
            sim.send(a.src, a.dest, &payload);
        });
        sim.tick();
    }
    // Drain: stop offering, let in-flight messages finish counting.
    for _ in 0..cfg.drain {
        if sim.is_quiescent() {
            break;
        }
        sim.tick();
    }
    (sim, stream_words)
}

/// Summarizes a finished load-point sim into its curve point.
fn load_point_from(
    sim: &mut NetworkSim,
    cfg: &SweepConfig,
    load: f64,
    stream_words: usize,
) -> LoadPoint {
    let n = sim.topology().endpoints();
    let stats = sim.stats_mut();
    let delivered = stats.delivered;
    LoadPoint {
        offered: load,
        // Fraction of injection capacity actually used: each message
        // occupies `stream_words` cycles of its source's channel.
        accepted: delivered as f64 * stream_words as f64 / cfg.measure as f64 / n as f64,
        mean_latency: stats.total_latency.mean(),
        p50_latency: stats.total_latency.percentile(50.0),
        p95_latency: stats.total_latency.percentile(95.0),
        mean_network_latency: stats.network_latency.mean(),
        retries_per_message: stats.retries_per_message(),
        delivered,
    }
}

/// Runs one load point: Bernoulli arrivals at `load` on every endpoint,
/// parallelism-limited sources (one outstanding message each).
#[must_use]
pub fn run_load_point(cfg: &SweepConfig, load: f64) -> LoadPoint {
    let (mut sim, stream_words) = run_load_sim(cfg, load);
    load_point_from(&mut sim, cfg, load, stream_words)
}

/// [`run_load_point`], additionally freezing the sim's telemetry into a
/// snapshot named `name` — the source of the `.telemetry.json` sidecar
/// an artifact exports for its representative cell.
#[must_use]
pub fn run_load_point_with_telemetry(
    cfg: &SweepConfig,
    load: f64,
    name: &str,
) -> (LoadPoint, TelemetrySnapshot) {
    let (mut sim, stream_words) = run_load_sim(cfg, load);
    let snapshot = sim.telemetry_snapshot(name);
    (load_point_from(&mut sim, cfg, load, stream_words), snapshot)
}

/// Runs a full latency-versus-load sweep (Figure 3) on one worker.
/// Equivalent to [`load_sweep_jobs`] with `jobs = 1` — and, by the
/// per-point seeding scheme, bit-identical to any other worker count.
#[must_use]
pub fn load_sweep(cfg: &SweepConfig, loads: &[f64]) -> Vec<LoadPoint> {
    load_sweep_jobs(cfg, loads, NonZeroUsize::MIN)
}

/// Runs a latency-versus-load sweep with up to `jobs` worker threads.
/// Points are independent simulations seeded by
/// [`point_seed`]`(cfg.seed, index)`; results come back in load order
/// regardless of the worker count.
#[must_use]
pub fn load_sweep_jobs(cfg: &SweepConfig, loads: &[f64], jobs: NonZeroUsize) -> Vec<LoadPoint> {
    par_map(jobs, loads, |i, &load| {
        let point_cfg = SweepConfig {
            seed: point_seed(cfg.seed, i as u64),
            ..cfg.clone()
        };
        run_load_point(&point_cfg, load)
    })
}

/// Runs the fault-point simulation to completion and returns the sim,
/// shared by [`run_fault_point`] and its telemetry-carrying variant.
fn run_fault_sim(
    cfg: &SweepConfig,
    load: f64,
    dead_routers: usize,
    dead_links: usize,
) -> NetworkSim {
    let mut sim = NetworkSim::new(&cfg.spec, &cfg.sim).expect("valid spec");
    let n = sim.topology().endpoints();
    let stream_words = sim.stream_for(0, &vec![0; cfg.payload_words]).len();
    let mut fault_rng = RandomSource::new(cfg.seed ^ 0xFA017);
    let mut faults = FaultSet::new();
    // Restrict router kills to the dilated (multipath) stages: killing
    // a final-stage dilation-1 router in Figure 3's topology removes a
    // destination's only delivery group — the paper's networks place
    // dilation-1 parts there precisely because whole-router loss is
    // then survivable only via the *other* endpoint input; we model
    // endpoint-isolating faults separately in the analysis crate.
    let dilated: Vec<usize> = (0..sim.topology().stages() - 1)
        .map(|s| sim.topology().routers_in_stage(s))
        .collect();
    faults.kill_random_routers(&dilated, dead_routers, &mut fault_rng);
    // Likewise, restrict link kills to the multipath region: a
    // delivery wire is one of only `endpoint_ports` inputs to its
    // destination, so killing both is structural isolation (covered by
    // metro-topo's analysis), not the graceful-degradation regime this
    // sweep measures.
    let last_stage = sim.topology().stages() - 1;
    let links: Vec<_> = all_links(sim.topology())
        .into_iter()
        .filter(|l| l.stage < last_stage)
        .collect();
    faults.kill_random_links(&links, dead_links, &mut fault_rng);
    sim.apply_faults(faults);

    let recipe = StreamRecipe {
        arrival: &cfg.arrival,
        rates: &cfg.rates,
        pattern: &cfg.pattern,
        load,
        stream_words,
        payload_words: cfg.payload_words,
        endpoints: n,
        seeds: StreamSeeds::fault(cfg.seed),
    };
    let mut driver = recipe.driver();
    let payload: Vec<u16> = (0..cfg.payload_words).map(|k| k as u16).collect();
    let total = cfg.warmup + cfg.measure;
    for cycle in 0..total {
        if cycle == cfg.warmup {
            sim.reset_stats();
        }
        driver.poll(cycle, |a| {
            sim.send(a.src, a.dest, &payload);
        });
        sim.tick();
    }
    for _ in 0..cfg.drain {
        if sim.is_quiescent() {
            break;
        }
        sim.tick();
    }
    sim
}

/// Summarizes a finished fault-point sim into its sweep point.
fn fault_point_from(
    sim: &mut NetworkSim,
    cfg: &SweepConfig,
    dead_routers: usize,
    dead_links: usize,
) -> FaultSweepPoint {
    let endpoints = sim.topology().endpoints();
    let measure = cfg.measure;
    let payload_words = cfg.payload_words;
    let stats = sim.stats_mut();
    FaultSweepPoint {
        dead_routers,
        dead_links,
        mean_latency: stats.total_latency.mean(),
        p95_latency: stats.total_latency.percentile(95.0),
        retries_per_message: stats.retries_per_message(),
        accepted: stats.delivered as f64 * payload_words as f64 / measure as f64 / endpoints as f64,
        delivered: stats.delivered,
        abandoned: stats.abandoned,
    }
}

/// Runs one fault point: kills `dead_routers` random non-final-stage
/// routers and `dead_links` random links, then measures at `load`.
#[must_use]
pub fn run_fault_point(
    cfg: &SweepConfig,
    load: f64,
    dead_routers: usize,
    dead_links: usize,
) -> FaultSweepPoint {
    let mut sim = run_fault_sim(cfg, load, dead_routers, dead_links);
    fault_point_from(&mut sim, cfg, dead_routers, dead_links)
}

/// [`run_fault_point`], additionally freezing the sim's telemetry into
/// a snapshot named `name` for sidecar export.
#[must_use]
pub fn run_fault_point_with_telemetry(
    cfg: &SweepConfig,
    load: f64,
    dead_routers: usize,
    dead_links: usize,
    name: &str,
) -> (FaultSweepPoint, TelemetrySnapshot) {
    let mut sim = run_fault_sim(cfg, load, dead_routers, dead_links);
    let snapshot = sim.telemetry_snapshot(name);
    (
        fault_point_from(&mut sim, cfg, dead_routers, dead_links),
        snapshot,
    )
}

/// Runs a fault-degradation sweep at fixed load on one worker.
/// Equivalent to [`fault_sweep_jobs`] over `(k, 0)` pairs with
/// `jobs = 1`.
#[must_use]
pub fn fault_sweep(cfg: &SweepConfig, load: f64, router_kills: &[usize]) -> Vec<FaultSweepPoint> {
    let grid: Vec<(usize, usize)> = router_kills.iter().map(|&k| (k, 0)).collect();
    fault_sweep_jobs(cfg, load, &grid, NonZeroUsize::MIN)
}

/// Runs a fault-degradation sweep over a `(dead_routers, dead_links)`
/// grid with up to `jobs` worker threads. Each grid point is an
/// independent simulation seeded by [`point_seed`]`(cfg.seed, index)`
/// (which also decorrelates the *fault choices* across points);
/// results come back in grid order regardless of the worker count.
#[must_use]
pub fn fault_sweep_jobs(
    cfg: &SweepConfig,
    load: f64,
    grid: &[(usize, usize)],
    jobs: NonZeroUsize,
) -> Vec<FaultSweepPoint> {
    par_map(jobs, grid, |i, &(dead_routers, dead_links)| {
        let point_cfg = SweepConfig {
            seed: point_seed(cfg.seed, i as u64),
            ..cfg.clone()
        };
        run_fault_point(&point_cfg, load, dead_routers, dead_links)
    })
}

/// Convenience: the default endpoint configuration used by sweeps.
#[must_use]
pub fn default_endpoint_config() -> EndpointConfig {
    EndpointConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SweepConfig {
        SweepConfig {
            warmup: 200,
            measure: 1_500,
            drain: 800,
            ..SweepConfig::small()
        }
    }

    #[test]
    fn latency_grows_with_load() {
        let cfg = quick();
        let low = run_load_point(&cfg, 0.05);
        let high = run_load_point(&cfg, 0.7);
        assert!(low.delivered > 0 && high.delivered > 0);
        assert!(
            high.mean_latency > low.mean_latency,
            "latency must rise with load: {} vs {}",
            low.mean_latency,
            high.mean_latency
        );
    }

    #[test]
    fn low_load_latency_near_unloaded() {
        let cfg = quick();
        let base = unloaded_latency(&cfg) as f64;
        let low = run_load_point(&cfg, 0.02);
        assert!(
            low.mean_latency < base * 2.0,
            "low-load latency {} should be near unloaded {base}",
            low.mean_latency
        );
    }

    #[test]
    fn fault_point_still_delivers() {
        let cfg = quick();
        let p = run_fault_point(&cfg, 0.2, 2, 2);
        assert!(p.delivered > 0, "network with faults must keep delivering");
        assert_eq!(p.abandoned, 0, "no message may be lost");
    }

    #[test]
    fn faults_degrade_gracefully_without_loss() {
        // Note: retries/delivered-message can even *drop* under faults —
        // sources stalled behind dead entry ports thin the offered load
        // and with it the contention blocking. The invariants are
        // losslessness and bounded degradation.
        let cfg = quick();
        let clean = run_fault_point(&cfg, 0.3, 0, 0);
        let faulty = run_fault_point(&cfg, 0.3, 3, 4);
        assert_eq!(clean.abandoned, 0);
        assert_eq!(faulty.abandoned, 0, "faults must not lose messages");
        assert!(faulty.delivered > 0);
        assert!(
            faulty.mean_latency < clean.mean_latency * 10.0,
            "degradation not graceful: {} vs {}",
            clean.mean_latency,
            faulty.mean_latency
        );
    }

    #[test]
    fn point_seeds_are_deterministic_and_decorrelated() {
        assert_eq!(point_seed(0xF163, 0), point_seed(0xF163, 0));
        // Distinct indices and distinct master seeds give distinct
        // streams; index 0 must not pass the master seed through.
        let s: Vec<u64> = (0..64).map(|i| point_seed(0xF163, i)).collect();
        for (i, &a) in s.iter().enumerate() {
            assert_ne!(a, 0xF163, "index {i} leaked the master seed");
            for &b in &s[i + 1..] {
                assert_ne!(a, b, "colliding point seeds");
            }
        }
        assert_ne!(point_seed(1, 0), point_seed(2, 0));
    }

    #[test]
    fn parallel_sweeps_match_sequential_bitwise() {
        let cfg = SweepConfig {
            warmup: 100,
            measure: 600,
            drain: 400,
            ..SweepConfig::small()
        };
        let loads = [0.05, 0.2, 0.4, 0.6];
        let jobs4 = NonZeroUsize::new(4).unwrap();
        let seq = load_sweep_jobs(&cfg, &loads, NonZeroUsize::MIN);
        let par = load_sweep_jobs(&cfg, &loads, jobs4);
        assert_eq!(seq, par, "load sweep must not depend on worker count");
        assert_eq!(seq, load_sweep(&cfg, &loads));

        let grid = [(0, 0), (1, 0), (2, 2), (0, 4)];
        let seq = fault_sweep_jobs(&cfg, 0.3, &grid, NonZeroUsize::MIN);
        let par = fault_sweep_jobs(&cfg, 0.3, &grid, jobs4);
        assert_eq!(seq, par, "fault sweep must not depend on worker count");
    }

    #[test]
    fn sweep_points_use_derived_seeds() {
        // Two sweeps over the same load at different positions must
        // differ (per-point seeds), while a single point re-run must
        // not (determinism).
        let cfg = quick();
        let a = load_sweep(&cfg, &[0.3, 0.3]);
        assert_eq!(a[0], {
            let again = load_sweep(&cfg, &[0.3, 0.3]);
            again[0].clone()
        });
        assert_ne!(
            a[0], a[1],
            "same load at different sweep positions must draw different seeds"
        );
    }

    #[test]
    fn figure3_unloaded_is_about_28_cycles() {
        let cfg = SweepConfig::figure3();
        let lat = unloaded_latency(&cfg);
        assert!(
            (24..36).contains(&(lat as usize)),
            "figure 3 unloaded latency {lat} should be near the paper's 28"
        );
    }
}
