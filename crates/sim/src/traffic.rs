//! Destination patterns for generated traffic.
//!
//! Figure 3 uses "randomly distributed, 20-byte message traffic"; the
//! additional patterns here (hotspot, transpose, bit-reversal) are the
//! standard adversaries for multistage networks and drive the ablation
//! benches. Arrival processes and load control live in
//! [`crate::workload`].

use metro_core::RandomSource;

/// How destinations are chosen for generated messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Uniformly random destinations (excluding self) — the Figure 3
    /// workload.
    Uniform,
    /// A fraction (percent) of traffic targets one hot endpoint; the
    /// rest is uniform.
    Hotspot {
        /// The hot destination.
        target: usize,
        /// Percent of messages aimed at it (0–100).
        percent: usize,
    },
    /// Destination = source with high and low halves of the index
    /// swapped (matrix transpose).
    Transpose,
    /// Destination = bit-reversed source index.
    BitReversal,
    /// A fixed permutation: destination = `perm[src]`.
    Permutation(Vec<usize>),
}

/// A pattern that does not fit the topology it was asked to drive —
/// the typed rejection raised at scenario build time instead of
/// silently mis-mapping destinations mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficError {
    /// Transpose/bit-reversal index arithmetic only permutes correctly
    /// when the endpoint count is a power of two.
    NonPowerOfTwoEndpoints {
        /// The offending endpoint count.
        endpoints: usize,
    },
    /// A hotspot aimed outside the topology.
    HotspotTargetOutOfRange {
        /// The configured hot destination.
        target: usize,
        /// Endpoints in the topology.
        endpoints: usize,
    },
    /// A permutation vector of the wrong length.
    PermutationLength {
        /// Endpoints in the topology.
        expected: usize,
        /// Entries in the vector.
        got: usize,
    },
    /// A permutation entry naming a destination outside the topology.
    PermutationOutOfRange {
        /// The offending source index.
        src: usize,
        /// Its mapped destination.
        dest: usize,
        /// Endpoints in the topology.
        endpoints: usize,
    },
    /// A permutation entry mapping a source to itself — the NIC
    /// protocol has no self-delivery path.
    PermutationSelfTarget {
        /// The self-mapping source index.
        src: usize,
    },
}

impl std::fmt::Display for TrafficError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonPowerOfTwoEndpoints { endpoints } => write!(
                f,
                "transpose/bit-reversal patterns need a power-of-two endpoint count, got {endpoints}"
            ),
            Self::HotspotTargetOutOfRange { target, endpoints } => {
                write!(f, "hotspot target {target} outside 0..{endpoints}")
            }
            Self::PermutationLength { expected, got } => {
                write!(f, "permutation has {got} entries for {expected} endpoints")
            }
            Self::PermutationOutOfRange {
                src,
                dest,
                endpoints,
            } => write!(
                f,
                "permutation maps {src} -> {dest} outside 0..{endpoints}"
            ),
            Self::PermutationSelfTarget { src } => {
                write!(f, "permutation maps {src} to itself")
            }
        }
    }
}

impl std::error::Error for TrafficError {}

impl TrafficPattern {
    /// Validates the pattern against an endpoint count — rejecting the
    /// combinations whose [`Self::destination`] arithmetic would
    /// silently mis-map (transpose/bit-reversal on non-power-of-two
    /// counts) or address outside the topology.
    ///
    /// # Errors
    ///
    /// See [`TrafficError`].
    pub fn validate(&self, endpoints: usize) -> Result<(), TrafficError> {
        match self {
            Self::Uniform => Ok(()),
            Self::Hotspot { target, .. } => {
                if *target >= endpoints {
                    return Err(TrafficError::HotspotTargetOutOfRange {
                        target: *target,
                        endpoints,
                    });
                }
                Ok(())
            }
            Self::Transpose | Self::BitReversal => {
                if !endpoints.is_power_of_two() {
                    return Err(TrafficError::NonPowerOfTwoEndpoints { endpoints });
                }
                Ok(())
            }
            Self::Permutation(p) => {
                if p.len() != endpoints {
                    return Err(TrafficError::PermutationLength {
                        expected: endpoints,
                        got: p.len(),
                    });
                }
                for (src, &dest) in p.iter().enumerate() {
                    if dest >= endpoints {
                        return Err(TrafficError::PermutationOutOfRange {
                            src,
                            dest,
                            endpoints,
                        });
                    }
                    if dest == src {
                        return Err(TrafficError::PermutationSelfTarget { src });
                    }
                }
                Ok(())
            }
        }
    }

    /// Chooses a destination for a message from `src` among
    /// `endpoints`, using `rng` for the stochastic patterns.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints < 2` (no valid non-self destination) for
    /// the stochastic patterns.
    pub fn destination(&self, src: usize, endpoints: usize, rng: &mut RandomSource) -> usize {
        match self {
            Self::Uniform => {
                assert!(endpoints >= 2, "uniform traffic needs at least 2 endpoints");
                let mut d = rng.index(endpoints - 1);
                if d >= src {
                    d += 1;
                }
                d
            }
            Self::Hotspot { target, percent } => {
                if rng.index(100) < *percent && *target != src {
                    *target
                } else {
                    Self::Uniform.destination(src, endpoints, rng)
                }
            }
            Self::Transpose => {
                let bits = endpoints.trailing_zeros() as usize;
                let half = bits / 2;
                let low = src & ((1 << half) - 1);
                let high = src >> (bits - half);
                let mid = (src >> half) & ((1 << (bits - 2 * half)) - 1);
                (low << (bits - half)) | (mid << half) | high
            }
            Self::BitReversal => {
                let bits = endpoints.trailing_zeros() as usize;
                let mut v = src;
                let mut out = 0;
                for _ in 0..bits {
                    out = (out << 1) | (v & 1);
                    v >>= 1;
                }
                out
            }
            Self::Permutation(p) => p[src],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_never_self_targets_and_covers_all() {
        let mut rng = RandomSource::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let d = TrafficPattern::Uniform.destination(5, 16, &mut rng);
            assert_ne!(d, 5);
            assert!(d < 16);
            seen.insert(d);
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn hotspot_concentrates() {
        let mut rng = RandomSource::new(2);
        let pattern = TrafficPattern::Hotspot {
            target: 3,
            percent: 50,
        };
        let hits = (0..4000)
            .filter(|_| pattern.destination(9, 16, &mut rng) == 3)
            .count();
        assert!(hits > 1600 && hits < 2400, "got {hits} / 4000");
    }

    #[test]
    fn transpose_is_an_involution_for_even_bits() {
        let mut rng = RandomSource::new(0);
        for src in 0..16 {
            let d = TrafficPattern::Transpose.destination(src, 16, &mut rng);
            let back = TrafficPattern::Transpose.destination(d, 16, &mut rng);
            assert_eq!(back, src);
        }
    }

    #[test]
    fn bit_reversal_matches_manual() {
        let mut rng = RandomSource::new(0);
        assert_eq!(
            TrafficPattern::BitReversal.destination(0b0001, 16, &mut rng),
            0b1000
        );
        assert_eq!(
            TrafficPattern::BitReversal.destination(0b1101, 16, &mut rng),
            0b1011
        );
    }

    #[test]
    fn permutation_applies_directly() {
        let mut rng = RandomSource::new(0);
        let p = TrafficPattern::Permutation(vec![2, 0, 1]);
        assert_eq!(p.destination(0, 3, &mut rng), 2);
        assert_eq!(p.destination(2, 3, &mut rng), 1);
    }

    #[test]
    fn validate_rejects_misfitting_patterns() {
        assert!(TrafficPattern::Uniform.validate(12).is_ok());
        assert!(TrafficPattern::Transpose.validate(16).is_ok());
        assert_eq!(
            TrafficPattern::Transpose.validate(12),
            Err(TrafficError::NonPowerOfTwoEndpoints { endpoints: 12 })
        );
        assert_eq!(
            TrafficPattern::BitReversal.validate(20),
            Err(TrafficError::NonPowerOfTwoEndpoints { endpoints: 20 })
        );
        assert_eq!(
            TrafficPattern::Hotspot {
                target: 16,
                percent: 30
            }
            .validate(16),
            Err(TrafficError::HotspotTargetOutOfRange {
                target: 16,
                endpoints: 16
            })
        );
        assert_eq!(
            TrafficPattern::Permutation(vec![1, 0]).validate(3),
            Err(TrafficError::PermutationLength {
                expected: 3,
                got: 2
            })
        );
        assert_eq!(
            TrafficPattern::Permutation(vec![1, 2, 5]).validate(3),
            Err(TrafficError::PermutationOutOfRange {
                src: 2,
                dest: 5,
                endpoints: 3
            })
        );
        assert_eq!(
            TrafficPattern::Permutation(vec![1, 1, 0]).validate(3),
            Err(TrafficError::PermutationSelfTarget { src: 1 })
        );
        assert!(TrafficPattern::Permutation(vec![1, 2, 0])
            .validate(3)
            .is_ok());
    }
}
