//! Workload patterns and load control.
//!
//! Figure 3 uses "randomly distributed, 20-byte message traffic"; the
//! additional patterns here (hotspot, transpose, bit-reversal) are the
//! standard adversaries for multistage networks and drive the ablation
//! benches.

use metro_core::RandomSource;

/// How destinations are chosen for generated messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Uniformly random destinations (excluding self) — the Figure 3
    /// workload.
    Uniform,
    /// A fraction (percent) of traffic targets one hot endpoint; the
    /// rest is uniform.
    Hotspot {
        /// The hot destination.
        target: usize,
        /// Percent of messages aimed at it (0–100).
        percent: usize,
    },
    /// Destination = source with high and low halves of the index
    /// swapped (matrix transpose).
    Transpose,
    /// Destination = bit-reversed source index.
    BitReversal,
    /// A fixed permutation: destination = `perm[src]`.
    Permutation(Vec<usize>),
}

impl TrafficPattern {
    /// Chooses a destination for a message from `src` among
    /// `endpoints`, using `rng` for the stochastic patterns.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints < 2` (no valid non-self destination) for
    /// the stochastic patterns.
    pub fn destination(&self, src: usize, endpoints: usize, rng: &mut RandomSource) -> usize {
        match self {
            Self::Uniform => {
                assert!(endpoints >= 2, "uniform traffic needs at least 2 endpoints");
                let mut d = rng.index(endpoints - 1);
                if d >= src {
                    d += 1;
                }
                d
            }
            Self::Hotspot { target, percent } => {
                if rng.index(100) < *percent && *target != src {
                    *target
                } else {
                    Self::Uniform.destination(src, endpoints, rng)
                }
            }
            Self::Transpose => {
                let bits = endpoints.trailing_zeros() as usize;
                let half = bits / 2;
                let low = src & ((1 << half) - 1);
                let high = src >> (bits - half);
                let mid = (src >> half) & ((1 << (bits - 2 * half)) - 1);
                (low << (bits - half)) | (mid << half) | high
            }
            Self::BitReversal => {
                let bits = endpoints.trailing_zeros() as usize;
                let mut v = src;
                let mut out = 0;
                for _ in 0..bits {
                    out = (out << 1) | (v & 1);
                    v >>= 1;
                }
                out
            }
            Self::Permutation(p) => p[src],
        }
    }
}

/// Bernoulli message arrivals at a configured offered load.
///
/// Offered load is expressed as the fraction of each source's injection
/// capacity: a source at load 1.0 would stream messages back to back.
/// With messages of `stream_words` words (header + payload + checksum +
/// TURN), the per-cycle arrival probability is `load / stream_words`.
#[derive(Debug, Clone)]
pub struct LoadGenerator {
    threshold: u64,
    rng: RandomSource,
}

impl LoadGenerator {
    /// Creates a generator for the given offered load (0.0–1.0+) and
    /// message stream length.
    #[must_use]
    pub fn new(load: f64, stream_words: usize, seed: u64) -> Self {
        let p = (load / stream_words.max(1) as f64).clamp(0.0, 1.0);
        Self {
            threshold: (p * (u32::MAX as f64 + 1.0)) as u64,
            rng: RandomSource::new(seed),
        }
    }

    /// Whether a new message arrives this cycle.
    pub fn arrival(&mut self) -> bool {
        self.rng.bits(32) < self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_never_self_targets_and_covers_all() {
        let mut rng = RandomSource::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let d = TrafficPattern::Uniform.destination(5, 16, &mut rng);
            assert_ne!(d, 5);
            assert!(d < 16);
            seen.insert(d);
        }
        assert_eq!(seen.len(), 15);
    }

    #[test]
    fn hotspot_concentrates() {
        let mut rng = RandomSource::new(2);
        let pattern = TrafficPattern::Hotspot {
            target: 3,
            percent: 50,
        };
        let hits = (0..4000)
            .filter(|_| pattern.destination(9, 16, &mut rng) == 3)
            .count();
        assert!(hits > 1600 && hits < 2400, "got {hits} / 4000");
    }

    #[test]
    fn transpose_is_an_involution_for_even_bits() {
        let mut rng = RandomSource::new(0);
        for src in 0..16 {
            let d = TrafficPattern::Transpose.destination(src, 16, &mut rng);
            let back = TrafficPattern::Transpose.destination(d, 16, &mut rng);
            assert_eq!(back, src);
        }
    }

    #[test]
    fn bit_reversal_matches_manual() {
        let mut rng = RandomSource::new(0);
        assert_eq!(
            TrafficPattern::BitReversal.destination(0b0001, 16, &mut rng),
            0b1000
        );
        assert_eq!(
            TrafficPattern::BitReversal.destination(0b1101, 16, &mut rng),
            0b1011
        );
    }

    #[test]
    fn permutation_applies_directly() {
        let mut rng = RandomSource::new(0);
        let p = TrafficPattern::Permutation(vec![2, 0, 1]);
        assert_eq!(p.destination(0, 3, &mut rng), 2);
        assert_eq!(p.destination(2, 3, &mut rng), 1);
    }

    #[test]
    fn load_generator_rate_is_calibrated() {
        let mut g = LoadGenerator::new(0.5, 25, 7);
        let arrivals = (0..100_000).filter(|_| g.arrival()).count();
        // Expected p = 0.02 -> ~2000 arrivals.
        assert!((1700..2300).contains(&arrivals), "got {arrivals}");
    }

    #[test]
    fn zero_load_never_arrives() {
        let mut g = LoadGenerator::new(0.0, 25, 7);
        assert!((0..10_000).filter(|_| g.arrival()).count() == 0);
    }
}
