//! Golden-trace equivalence: the flat double-buffered engine must be
//! cycle-for-cycle indistinguishable from the reference (nested-`Vec`)
//! engine it replaced — and the *sharded* flat engine must be
//! bit-identical to the single-threaded flat tick at every shard
//! count.
//!
//! Every case builds the *same* network several times — once per
//! [`EngineKind`], plus flat runs at `shards ∈ {2, 4, auto}` — drives
//! all of them in lockstep with an identical workload (including
//! mid-run dynamic faults), and asserts that the complete
//! [`MessageOutcome`] sequences, the per-router counter totals, and the
//! end-of-run fabric state all match exactly.

use metro_core::router::RouterStats;
use metro_sim::message::MessageOutcome;
use metro_sim::{EngineKind, NetworkSim, SimConfig};
use metro_topo::fault::{FaultKind, FaultSet};
use metro_topo::multibutterfly::{MultibutterflySpec, StageSpec};
use metro_topo::paths::all_links;
use proptest::prelude::*;

/// A workload script applied identically to both engines.
#[derive(Debug, Clone)]
struct Workload {
    /// `(send_at_cycle, src, dest, payload)` triples, sorted by cycle.
    sends: Vec<(u64, usize, usize, Vec<u16>)>,
    /// Cycle at which to inject the fault set, if any.
    fault_at: Option<(u64, FaultPlan)>,
    /// Total cycles to run.
    cycles: u64,
}

#[derive(Debug, Clone)]
enum FaultPlan {
    KillRouter {
        stage_seed: usize,
        router_seed: usize,
    },
    BreakLink {
        link_seed: usize,
        xor: u16,
    },
}

/// Network shapes spanning the radix / dilation / stage-count space the
/// simulator supports; the wiring seed then varies the inter-stage
/// permutations within each shape.
fn spec_for(shape: usize, wiring_seed: u64) -> MultibutterflySpec {
    let spec = match shape % 4 {
        0 => MultibutterflySpec::small8(),
        1 => MultibutterflySpec::figure1(),
        // Four radix-2 stages (deeper network, more settle windows).
        2 => MultibutterflySpec::paper32(),
        // Radix-1 randomizer front stage (dilation 8).
        _ => MultibutterflySpec {
            endpoints: 8,
            endpoint_ports: 2,
            stages: vec![
                StageSpec::new(4, 4, 4), // radix 1: pure randomizer
                StageSpec::new(4, 4, 2),
                StageSpec::new(4, 4, 2),
                StageSpec::new(2, 2, 1),
            ],
            wiring: metro_topo::multibutterfly::WiringStyle::Randomized,
            seed: 8,
        },
    };
    spec.with_seed(wiring_seed)
}

fn run_engine(
    kind: EngineKind,
    shards: usize,
    spec: &MultibutterflySpec,
    base: &SimConfig,
    load: &Workload,
) -> (Vec<MessageOutcome>, Vec<Vec<RouterStats>>, bool, usize) {
    let config = SimConfig {
        engine: kind,
        shards,
        ..base.clone()
    };
    let mut sim = NetworkSim::new(spec, &config).expect("valid spec");
    let n = sim.topology().endpoints();
    let mut pending = load.sends.clone();
    for now in 0..load.cycles {
        while let Some((at, src, dest, payload)) = pending.first().cloned() {
            if at > now {
                break;
            }
            sim.send(src % n, dest % n, &payload);
            pending.remove(0);
        }
        if let Some((at, plan)) = &load.fault_at {
            if *at == now {
                let mut faults = FaultSet::new();
                match plan {
                    FaultPlan::KillRouter {
                        stage_seed,
                        router_seed,
                    } => {
                        let s = stage_seed % sim.topology().stages();
                        let r = router_seed % sim.topology().routers_in_stage(s);
                        faults.kill_router(s, r);
                    }
                    FaultPlan::BreakLink { link_seed, xor } => {
                        let links = all_links(sim.topology());
                        let victim = links[link_seed % links.len()];
                        faults.break_link(victim, FaultKind::CorruptData { xor: *xor });
                    }
                }
                sim.apply_faults(faults);
            }
        }
        sim.tick();
    }
    let outcomes = sim.drain_outcomes();
    let stats: Vec<Vec<RouterStats>> = (0..sim.topology().stages())
        .map(|s| {
            (0..sim.topology().routers_in_stage(s))
                .map(|r| sim.router(s, r).stats())
                .collect()
        })
        .collect();
    let delivered_words: usize = outcomes.iter().map(|o| o.payload_words).sum();
    (outcomes, stats, sim.fabric_idle(), delivered_words)
}

fn assert_equivalent(spec: &MultibutterflySpec, base: &SimConfig, load: &Workload) {
    let (flat_out, flat_stats, flat_idle, flat_words) =
        run_engine(EngineKind::Flat, 1, spec, base, load);
    let (ref_out, ref_stats, ref_idle, ref_words) =
        run_engine(EngineKind::Reference, 1, spec, base, load);
    assert_eq!(
        flat_out, ref_out,
        "MessageOutcome sequences diverged between engines"
    );
    assert_eq!(
        flat_stats, ref_stats,
        "per-router counter totals diverged between engines"
    );
    assert_eq!(flat_idle, ref_idle, "fabric idleness diverged");
    assert_eq!(flat_words, ref_words, "payload word accounting diverged");
    // The sharded flat tick is an execution strategy, not a semantic
    // change: every shard count (including 0 = host auto) must be
    // bit-identical to the single-threaded flat run.
    for shards in [2usize, 4, 0] {
        let (out, stats, idle, words) = run_engine(EngineKind::Flat, shards, spec, base, load);
        assert_eq!(
            out, flat_out,
            "MessageOutcome sequences diverged at shards={shards}"
        );
        assert_eq!(
            stats, flat_stats,
            "per-router counter totals diverged at shards={shards}"
        );
        assert_eq!(
            idle, flat_idle,
            "fabric idleness diverged at shards={shards}"
        );
        assert_eq!(
            words, flat_words,
            "payload word accounting diverged at shards={shards}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fault-free traffic: any shape, seed, and send schedule produces
    /// identical outcome streams and router counters on both engines.
    #[test]
    fn engines_agree_without_faults(
        shape in 0usize..4,
        wiring_seed in any::<u64>(),
        sim_seed in any::<u64>(),
        raw_sends in proptest::collection::vec(
            (0u64..300, any::<usize>(), any::<usize>(),
             proptest::collection::vec(0u16..256, 0..10)),
            1..8,
        ),
    ) {
        let spec = spec_for(shape, wiring_seed);
        let base = SimConfig { seed: sim_seed, ..SimConfig::default() };
        let mut sends = raw_sends;
        sends.sort_by_key(|(at, ..)| *at);
        let load = Workload { sends, fault_at: None, cycles: 2_500 };
        assert_equivalent(&spec, &base, &load);
    }

    /// Mid-run dynamic faults (dead router or corrupting link) inject
    /// identically through both engines' fault paths.
    #[test]
    fn engines_agree_under_dynamic_faults(
        shape in 0usize..4,
        sim_seed in any::<u64>(),
        fault_at in 0u64..200,
        kill in any::<bool>(),
        stage_seed in any::<usize>(),
        victim_seed in any::<usize>(),
        xor in 1u16..256,
        raw_sends in proptest::collection::vec(
            (0u64..250, any::<usize>(), any::<usize>(),
             proptest::collection::vec(0u16..256, 0..6)),
            1..6,
        ),
    ) {
        let spec = spec_for(shape, 0xD1CE);
        let base = SimConfig { seed: sim_seed, ..SimConfig::default() };
        let plan = if kill {
            FaultPlan::KillRouter { stage_seed, router_seed: victim_seed }
        } else {
            FaultPlan::BreakLink { link_seed: victim_seed, xor: xor & 0xFF }
        };
        let mut sends = raw_sends;
        sends.sort_by_key(|(at, ..)| *at);
        let load = Workload { sends, fault_at: Some((fault_at, plan)), cycles: 3_000 };
        assert_equivalent(&spec, &base, &load);
    }

    /// Detailed-reclamation mode (no BCB fast path) and pipelined wires
    /// exercise the settle-window logic; both engines must still agree.
    #[test]
    fn engines_agree_with_detailed_reclamation_and_deep_wires(
        sim_seed in any::<u64>(),
        wire_delay in 0usize..3,
        fast_reclaim in any::<bool>(),
        raw_sends in proptest::collection::vec(
            (0u64..150, any::<usize>(), any::<usize>(),
             proptest::collection::vec(0u16..256, 0..8)),
            1..6,
        ),
    ) {
        let spec = MultibutterflySpec::small8();
        let base = SimConfig {
            seed: sim_seed,
            wire_delay,
            fast_reclaim,
            ..SimConfig::default()
        };
        let mut sends = raw_sends;
        sends.sort_by_key(|(at, ..)| *at);
        let load = Workload { sends, fault_at: None, cycles: 3_000 };
        assert_equivalent(&spec, &base, &load);
    }
}

/// A deterministic hotspot run — every endpoint hammers endpoint 0 —
/// as a fixed regression anchor alongside the randomized cases.
#[test]
fn hotspot_congestion_golden_run() {
    let spec = MultibutterflySpec::figure1();
    let base = SimConfig::default();
    let sends = (1..16)
        .map(|src| (0u64, src, 0usize, vec![src as u16; 4]))
        .collect();
    let load = Workload {
        sends,
        fault_at: None,
        cycles: 20_000,
    };
    assert_equivalent(&spec, &base, &load);
}
