//! Checkpoint/resume bit-identity, proven by property tests: run `N`
//! cycles, checkpoint, restore into a fresh machine, run `M` more —
//! the combined run must equal a straight `N + M` run in every
//! observable: the outcome stream, the statistics, the telemetry
//! snapshot, the healed sets, and the live fault mask. Exercised on
//! the flat engine at shard counts 1, 2, and 4 and on the reference
//! engine, plus the shard-count-agnosticism claim: a checkpoint taken
//! under one shard count resumes bit-identically under another.

use metro_sim::checkpoint::{resume_scenario, run_scenario_resumable, Checkpoint, CheckpointSink};
use metro_sim::scenario::{FaultInjection, RepairSet, Scenario, ScenarioResult, WorkloadSpec};
use metro_sim::{ArrivalProcess, EngineKind, NetworkSim, RateMap, SimConfig, TrafficPattern};
use metro_topo::fault::{FaultKind, FaultSet};
use metro_topo::graph::LinkId;
use metro_topo::multibutterfly::MultibutterflySpec;
use proptest::prelude::*;

/// A randomized load scenario on the small8 topology, with self-heal
/// on and a mid-run corrupting injection so retries, telemetry, and
/// (sometimes) healing all have material to work with.
fn load_scenario(seed: u64, load_milli: u64, shards: usize, engine: EngineKind) -> Scenario {
    let mut injected = FaultSet::new();
    injected.break_link(
        LinkId::new(1, (seed % 4) as usize, 0),
        FaultKind::CorruptData {
            xor: 1 + (seed % 0xFF) as u16,
        },
    );
    Scenario {
        name: "ckpt-prop".to_string(),
        topology: MultibutterflySpec::small8(),
        sim: SimConfig {
            seed: seed ^ 0x51AB,
            engine,
            shards,
            self_heal: true,
            telemetry_every: 4,
            ..SimConfig::default()
        },
        seed,
        faults: FaultSet::new(),
        injections: vec![FaultInjection {
            at: 60,
            faults: injected,
            repairs: RepairSet::default(),
        }],
        workload: WorkloadSpec::Load {
            pattern: TrafficPattern::Uniform,
            arrival: ArrivalProcess::Bernoulli,
            rates: RateMap::Uniform,
            load: load_milli as f64 / 1000.0,
            payload_words: 5,
            warmup: 40,
            measure: 160,
            drain: 120,
        },
    }
}

/// Runs the scenario straight through, capturing one checkpoint at
/// cycle `at`.
fn run_straight(scenario: &Scenario, at: u64) -> (ScenarioResult, NetworkSim, Checkpoint) {
    let mut taken = None;
    let mut sink = |c: &Checkpoint| {
        if c.cycle == at {
            taken = Some(c.clone());
        }
        Ok(())
    };
    let (result, sim) = run_scenario_resumable(
        scenario,
        None,
        Some(CheckpointSink {
            every: at,
            sink: &mut sink,
        }),
    )
    .unwrap();
    (result, sim, taken.expect("checkpoint at requested cycle"))
}

/// Asserts every observable of the two finished machines matches.
fn assert_machines_equal(straight: &mut NetworkSim, resumed: &mut NetworkSim) {
    assert_eq!(
        straight.telemetry_snapshot("s"),
        resumed.telemetry_snapshot("s"),
        "telemetry snapshots diverged"
    );
    assert_eq!(
        straight.healed_links(),
        resumed.healed_links(),
        "healed link sets diverged"
    );
    assert_eq!(
        straight.healed_injections(),
        resumed.healed_injections(),
        "healed injection sets diverged"
    );
    assert_eq!(straight.faults(), resumed.faults(), "fault masks diverged");
    assert_eq!(straight.now(), resumed.now(), "clocks diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N → checkpoint → resume → M ≡ straight N+M, on the flat engine
    /// at every supported shard count.
    #[test]
    fn flat_engine_resumes_bit_identically_at_every_shard_count(
        seed in any::<u64>(),
        load_milli in 100u64..450,
        at in 1u64..200,
    ) {
        for shards in [1usize, 2, 4] {
            let s = load_scenario(seed, load_milli, shards, EngineKind::Flat);
            let (straight, mut straight_sim, ckpt) = run_straight(&s, at);
            let (resumed, mut resumed_sim) = resume_scenario(&ckpt).unwrap();
            prop_assert_eq!(
                &resumed, &straight,
                "shards={} at={} diverged", shards, at
            );
            assert_machines_equal(&mut straight_sim, &mut resumed_sim);
        }
    }

    /// The same contract on the reference engine — the independent
    /// implementation both sides of the differential fuzzer trust.
    #[test]
    fn reference_engine_resumes_bit_identically(
        seed in any::<u64>(),
        load_milli in 100u64..450,
        at in 1u64..200,
    ) {
        let s = load_scenario(seed, load_milli, 1, EngineKind::Reference);
        let (straight, mut straight_sim, ckpt) = run_straight(&s, at);
        let (resumed, mut resumed_sim) = resume_scenario(&ckpt).unwrap();
        prop_assert_eq!(&resumed, &straight);
        assert_machines_equal(&mut straight_sim, &mut resumed_sim);
    }

    /// A checkpoint is shard-count-agnostic: taken under `from` shards,
    /// it resumes under `to` shards to the same run.
    #[test]
    fn checkpoints_resume_across_shard_counts(
        seed in any::<u64>(),
        load_milli in 100u64..450,
        at in 1u64..200,
        from_idx in 0usize..3,
        to_idx in 0usize..3,
    ) {
        let counts = [1usize, 2, 4];
        let (from, to) = (counts[from_idx], counts[to_idx]);
        let s = load_scenario(seed, load_milli, from, EngineKind::Flat);
        let (straight, mut straight_sim, mut ckpt) = run_straight(&s, at);
        // Re-target the embedded scenario's shard count and resume.
        ckpt.scenario.sim.shards = to;
        let (resumed, mut resumed_sim) = resume_scenario(&ckpt).unwrap();
        prop_assert_eq!(
            &resumed, &straight,
            "resume {}→{} shards at={} diverged", from, to, at
        );
        assert_machines_equal(&mut straight_sim, &mut resumed_sim);
    }

    /// The round trip through the JSON envelope changes nothing: a
    /// checkpoint decoded from its own rendering resumes to the same
    /// run as the in-memory original.
    #[test]
    fn envelope_round_trip_preserves_the_resume(
        seed in any::<u64>(),
        at in 1u64..200,
    ) {
        let s = load_scenario(seed, 300, 2, EngineKind::Flat);
        let (straight, _sim, ckpt) = run_straight(&s, at);
        let text = ckpt.to_json().render();
        let back = Checkpoint::from_text(&text).unwrap();
        prop_assert_eq!(&back, &ckpt);
        let (resumed, _sim) = resume_scenario(&back).unwrap();
        prop_assert_eq!(&resumed, &straight);
    }
}
