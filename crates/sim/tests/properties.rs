//! Property-based tests over the full protocol stack: arbitrary
//! payloads and destinations deliver intact, dynamic faults never cause
//! silent corruption, and simulations replay deterministically.

use metro_sim::{NetworkSim, SimConfig};
use metro_topo::fault::{FaultKind, FaultSet};
use metro_topo::multibutterfly::MultibutterflySpec;
use metro_topo::paths::all_links;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any payload to any destination arrives bit-exact — no loss,
    /// duplication, reordering, or truncation.
    #[test]
    fn any_message_delivers_intact(
        src in 0usize..8,
        dest in 0usize..8,
        payload in proptest::collection::vec(0u16..256, 0..24),
        seed in any::<u64>(),
    ) {
        prop_assume!(src != dest);
        let config = SimConfig { seed, ..SimConfig::default() };
        let mut sim = NetworkSim::new(&MultibutterflySpec::small8(), &config).unwrap();
        let o = sim.send_and_wait(src, dest, &payload, 3_000).expect("delivery");
        prop_assert_eq!(o.payload_delivered, payload);
    }

    /// Under any single corrupting link, delivered payloads are never
    /// silently wrong: the checksum catches every corruption and the
    /// retry eventually delivers the true payload.
    #[test]
    fn no_silent_corruption_under_any_single_corruptor(
        link_index in any::<usize>(),
        xor in 1u16..256,
        seed in any::<u64>(),
    ) {
        let config = SimConfig { seed, ..SimConfig::default() };
        let mut sim = NetworkSim::new(&MultibutterflySpec::small8(), &config).unwrap();
        let links = all_links(sim.topology());
        let victim = links[link_index % links.len()];
        let mut faults = FaultSet::new();
        faults.break_link(victim, FaultKind::CorruptData { xor: xor & 0xFF });
        sim.apply_faults(faults);
        let payload = [0x12u16, 0x34, 0x56];
        // Delivery may fail entirely only if the corruptor sits on a
        // delivery wire both of whose siblings it shares (impossible
        // for a single fault in small8); so it must arrive, intact.
        if let Some(o) = sim.send_and_wait(0, 5, &payload, 30_000) {
            prop_assert_eq!(o.payload_delivered, &payload[..]);
        }
    }

    /// Under any single dead router in a dilated stage, every pair
    /// still communicates.
    #[test]
    fn single_dilated_stage_router_death_is_survived(
        stage in 0usize..2,
        router_seed in any::<usize>(),
        seed in any::<u64>(),
    ) {
        let config = SimConfig { seed, ..SimConfig::default() };
        let mut sim = NetworkSim::new(&MultibutterflySpec::small8(), &config).unwrap();
        let router = router_seed % sim.topology().routers_in_stage(stage);
        let mut faults = FaultSet::new();
        faults.kill_router(stage, router);
        sim.apply_faults(faults);
        let o = sim.send_and_wait(1, 6, &[7, 8], 30_000);
        prop_assert!(o.is_some(), "stage {stage} router {router} death lost a message");
    }

    /// The same seed replays the same outcome timeline exactly.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>(), n in 1usize..6) {
        let run = || {
            let config = SimConfig { seed, ..SimConfig::default() };
            let mut sim = NetworkSim::new(&MultibutterflySpec::small8(), &config).unwrap();
            for k in 0..n {
                sim.send(k % 8, (k + 3) % 8, &[k as u16]);
            }
            sim.run(2_000);
            sim.drain_outcomes()
                .into_iter()
                .map(|o| (o.src, o.dest, o.completed_at, o.retries))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Different wire pipeline depths change latency but never
    /// correctness.
    #[test]
    fn wire_depth_never_breaks_delivery(
        wire_delay in 0usize..4,
        pipestages in 1usize..4,
        payload in proptest::collection::vec(0u16..256, 1..12),
    ) {
        let config = SimConfig {
            wire_delay,
            pipestages,
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(&MultibutterflySpec::small8(), &config).unwrap();
        let o = sim.send_and_wait(2, 7, &payload, 5_000).expect("delivery");
        prop_assert_eq!(o.payload_delivered, payload);
    }
}
