//! End-to-end behavior of the assembled network — delivery, retry,
//! faults, conversations, tracing, telemetry, and self-healing —
//! exercised through `NetworkSim`'s public API. (Formerly the unit
//! test module inside `network.rs`; everything here goes through
//! public surface, so it lives with the integration suites.)

use metro_sim::endpoint::{EndpointConfig, ReplyPolicy};
use metro_sim::message::{DeliveryStatus, FailureKind, ACK_OK};
use metro_sim::trace::TraceEvent;
use metro_sim::{EngineKind, NetworkSim, SimConfig};
use metro_telemetry::RouterCounter;
use metro_topo::fault::{FaultKind, FaultSet};
use metro_topo::graph::LinkId;
use metro_topo::multibutterfly::MultibutterflySpec;

fn fig1_sim() -> NetworkSim {
    NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap()
}

#[test]
fn single_message_delivers_intact() {
    let mut sim = fig1_sim();
    let payload: Vec<u16> = (0..19).map(|k| (k * 7 + 1) as u16 & 0xFF).collect();
    let outcome = sim.send_and_wait(3, 12, &payload, 400).expect("delivery");
    assert_eq!(outcome.payload_delivered, payload);
    assert_eq!(outcome.retries, 0);
    assert!(outcome.failures.is_empty());
}

#[test]
fn every_endpoint_pair_communicates() {
    let mut sim = fig1_sim();
    for src in 0..16 {
        let dest = (src + 7) % 16;
        let payload = [src as u16, dest as u16];
        let o = sim
            .send_and_wait(src, dest, &payload, 400)
            .unwrap_or_else(|| panic!("{src} -> {dest} failed"));
        assert_eq!(o.payload_delivered, payload);
    }
}

#[test]
fn unloaded_latency_is_stable_and_small() {
    let mut sim = fig1_sim();
    let payload = [1u16; 19];
    let a = sim.send_and_wait(0, 9, &payload, 400).unwrap();
    let b = sim.send_and_wait(0, 9, &payload, 400).unwrap();
    assert_eq!(a.network_latency(), b.network_latency());
    // Figure 3's deeper network measures 28 cycles; this 3-stage,
    // 16-endpoint network with 19-word payloads should be in the
    // same regime (stream ~22 words + ~6 cycles turnaround).
    assert!(
        (25..40).contains(&(a.network_latency() as usize)),
        "unloaded latency {} out of expected range",
        a.network_latency()
    );
}

#[test]
fn ack_code_round_trips() {
    let mut sim = fig1_sim();
    sim.send(2, 11, &[9, 9, 9]);
    sim.run(300);
    let outs = sim.drain_outcomes();
    assert_eq!(outs.len(), 1);
    // The record captured ACK_OK (success path).
    assert!(outs[0].failures.is_empty());
    let _ = ACK_OK;
}

#[test]
fn concurrent_messages_all_deliver() {
    let mut sim = fig1_sim();
    for src in 0..16 {
        sim.send(src, (src + 5) % 16, &[src as u16; 8]);
    }
    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 5000 {
        sim.tick();
        cycles += 1;
    }
    let outs = sim.drain_outcomes();
    assert_eq!(outs.len(), 16, "all 16 messages must complete");
    for o in &outs {
        assert!(o.total_latency() < 2000);
    }
}

#[test]
fn contention_causes_retries_but_no_loss() {
    let mut sim = fig1_sim();
    // Everyone hammers endpoint 0: heavy contention at the last
    // stages; stochastic retry must eventually deliver all.
    for src in 1..16 {
        sim.send(src, 0, &[src as u16; 4]);
    }
    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 20_000 {
        sim.tick();
        cycles += 1;
    }
    let outs = sim.drain_outcomes();
    assert_eq!(outs.len(), 15);
    let total_retries: usize = outs.iter().map(|o| o.retries).sum();
    assert!(total_retries > 0, "hotspot must cause blocking/retry");
}

#[test]
fn dead_router_is_routed_around() {
    let mut sim = fig1_sim();
    let mut faults = FaultSet::new();
    faults.kill_router(1, 2);
    sim.apply_faults(faults);
    for src in 0..16 {
        let o = sim.send_and_wait(src, (src + 3) % 16, &[7, 7], 3000);
        assert!(o.is_some(), "src {src} failed around dead router");
    }
}

#[test]
fn corrupting_link_is_detected_and_avoided() {
    let mut sim = fig1_sim();
    // Corrupt one of endpoint 4's route's stage-0 links.
    let digits = sim.topology().route_digits(9);
    let (r0, _) = sim.topology().injection(4, 0);
    let st0 = sim.topology().stage_spec(0);
    let mut faults = FaultSet::new();
    faults.break_link(
        LinkId::new(0, r0, digits[0] * st0.dilation),
        FaultKind::CorruptData { xor: 0x04 },
    );
    sim.apply_faults(faults);
    let o = sim
        .send_and_wait(4, 9, &[1, 2, 3, 4], 4000)
        .expect("delivered");
    assert_eq!(o.payload_delivered, vec![1, 2, 3, 4]);
}

#[test]
fn detailed_reclamation_reports_blocked_stage() {
    let config = SimConfig {
        fast_reclaim: false,
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    for src in 1..16 {
        sim.send(src, 0, &[1, 2]);
    }
    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 30_000 {
        sim.tick();
        cycles += 1;
    }
    let outs = sim.drain_outcomes();
    assert_eq!(outs.len(), 15);
    let blocked = outs
        .iter()
        .flat_map(|o| &o.failures)
        .filter(|f| matches!(f, FailureKind::Blocked { .. }))
        .count();
    assert!(blocked > 0, "detailed mode must report Blocked failures");
}

#[test]
fn figure3_network_simulates() {
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure3(), &SimConfig::default()).unwrap();
    let payload: Vec<u16> = (0..19).map(|k| k as u16).collect();
    let o = sim.send_and_wait(0, 63, &payload, 500).expect("delivery");
    assert_eq!(o.payload_delivered, payload);
    // Paper: "The unloaded message latency is 28 clock cycles from
    // message injection to acknowledgment receipt."
    assert!(
        (24..36).contains(&(o.network_latency() as usize)),
        "figure 3 unloaded latency {} should be near 28",
        o.network_latency()
    );
}

#[test]
fn heterogeneous_wire_delays_deliver_with_expected_latency() {
    // Short wires near the endpoints, a long middle boundary — the
    // §5.1 variable-turn-delay scenario.
    let config = SimConfig {
        stage_wire_delays: Some(vec![0, 3, 1, 0]),
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    let o = sim.send_and_wait(0, 9, &[4; 10], 2_000).expect("delivery");
    assert_eq!(o.payload_delivered, vec![4; 10]);
    // Baseline with all-zero wires for comparison.
    let mut base = NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
    let b = base.send_and_wait(0, 9, &[4; 10], 2_000).unwrap();
    // Extra round-trip cost ≈ 2 × (3 + 1) = 8 cycles.
    let delta = o.network_latency() as i64 - b.network_latency() as i64;
    assert!(
        (6..=12).contains(&delta),
        "expected ~8 extra cycles, got {delta}"
    );
}

#[test]
#[should_panic(expected = "stages + 1")]
fn wrong_boundary_count_is_rejected() {
    let config = SimConfig {
        stage_wire_delays: Some(vec![0, 1]),
        ..SimConfig::default()
    };
    let _ = NetworkSim::new(&MultibutterflySpec::figure1(), &config);
}

#[test]
fn analytic_engine_is_rejected_with_a_typed_error() {
    let config = SimConfig {
        engine: EngineKind::Analytic,
        ..SimConfig::default()
    };
    let err = NetworkSim::new(&MultibutterflySpec::figure1(), &config)
        .expect_err("the analytic engine cannot tick a network");
    let msg = err.to_string();
    assert!(msg.contains("analytic"), "error names the engine: {msg}");
    assert!(
        err.downcast_ref::<metro_sim::engine::NotCycleAccurate>()
            .is_some(),
        "typed error, not a stringly panic"
    );
}

#[test]
fn extra_stage_randomizer_network_delivers() {
    let mut sim = NetworkSim::new(
        &MultibutterflySpec::figure3_extra_stage(),
        &SimConfig::default(),
    )
    .unwrap();
    // The radix-1 front stage consumes no digits; the header plan
    // still packs 6 bits into one byte.
    assert_eq!(sim.header_plan().header_words(), 1);
    for dest in [0, 21, 63] {
        let payload = [dest as u16, 0xAA];
        let o = sim.send_and_wait(5, dest, &payload, 2_000);
        match o {
            Some(o) => assert_eq!(o.payload_delivered, payload, "dest {dest}"),
            None => panic!("dest {dest} failed"),
        }
    }
    // The extra stage adds one hop to the unloaded path.
    let base = {
        let mut b = NetworkSim::new(&MultibutterflySpec::figure3(), &SimConfig::default()).unwrap();
        b.send_and_wait(5, 60, &[1; 19], 2_000)
            .unwrap()
            .network_latency()
    };
    let extra = sim
        .send_and_wait(5, 60, &[1; 19], 2_000)
        .unwrap()
        .network_latency();
    assert!(
        (1..=4).contains(&(extra as i64 - base as i64)),
        "one extra hop, got {base} -> {extra}"
    );
}

#[test]
fn conversation_reverses_the_circuit_multiple_times() {
    let config = SimConfig {
        endpoint: EndpointConfig {
            reply: ReplyPolicy::Conversation,
            ..EndpointConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    let segments: [&[u16]; 3] = [&[1, 2, 3], &[4, 5], &[6, 7, 8, 9]];
    sim.send_conversation(2, 13, &segments);
    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 3_000 {
        sim.tick();
        cycles += 1;
    }
    let outs = sim.drain_outcomes();
    assert_eq!(outs.len(), 1, "conversation must complete");
    assert_eq!(outs[0].retries, 0);
    // Every segment arrived intact, in order, at the destination.
    let delivered = sim.endpoint_mut(13).take_delivered();
    assert_eq!(delivered.len(), 3);
    for (d, seg) in delivered.iter().zip(segments.iter()) {
        assert_eq!(&d.payload[..], *seg);
    }
    // One grant per stage for the whole conversation (a single
    // circuit), but three forward reversals per stage (one per
    // segment's TURN).
    let grants = sim.router_stat_total(|s| s.grants);
    let turns = sim.router_stat_total(|s| s.turns);
    assert_eq!(grants, 3, "one circuit");
    assert_eq!(turns, 9, "three reversals per router");
}

#[test]
fn conversation_under_congestion_retries_whole_exchange() {
    let config = SimConfig {
        endpoint: EndpointConfig {
            reply: ReplyPolicy::Conversation,
            ..EndpointConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    for src in 0..8 {
        let a: &[u16] = &[src as u16];
        let b: &[u16] = &[src as u16 + 100];
        sim.send_conversation(src, 15, &[a, b]);
    }
    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 60_000 {
        sim.tick();
        cycles += 1;
    }
    let outs = sim.drain_outcomes();
    assert_eq!(outs.len(), 8, "all conversations must complete");
    // 8 sources × 2 segments each delivered.
    assert_eq!(sim.endpoint_mut(15).take_delivered().len(), 16);
}

#[test]
fn trace_records_the_connection_lifecycle() {
    let mut sim = fig1_sim();
    sim.enable_trace(0);
    sim.send_and_wait(0, 9, &[1, 2, 3], 400).expect("delivery");
    let trace = sim.trace().unwrap();
    let grants = trace.of_kind(|e| matches!(e, TraceEvent::Granted { .. }));
    let turns = trace.of_kind(|e| matches!(e, TraceEvent::Turned { .. }));
    let drops = trace.of_kind(|e| matches!(e, TraceEvent::Dropped { .. }));
    let done = trace.of_kind(|e| matches!(e, TraceEvent::Completed { .. }));
    assert_eq!(grants.len(), 3, "one grant per stage");
    assert_eq!(turns.len(), 3, "one reversal per stage");
    assert_eq!(drops.len(), 3, "one release per stage");
    assert_eq!(done.len(), 1);
    // Lifecycle ordering: grants strictly before turns before drops.
    assert!(grants.iter().map(|r| r.at).max() < turns.iter().map(|r| r.at).min());
    assert!(turns.iter().map(|r| r.at).max() < drops.iter().map(|r| r.at).min());
}

#[test]
fn deterministic_replay() {
    let run = || {
        let mut sim = fig1_sim();
        for src in 0..16 {
            sim.send(src, (src + 9) % 16, &[3; 6]);
        }
        sim.run(600);
        let mut outs = sim.drain_outcomes();
        outs.sort_by_key(|o| (o.src, o.completed_at));
        outs.iter()
            .map(|o| (o.src, o.dest, o.completed_at, o.retries))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn pipelined_setup_hw1_works_end_to_end() {
    let config = SimConfig {
        header_words: 1,
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    let o = sim.send_and_wait(1, 14, &[5, 6, 7], 500).expect("delivery");
    assert_eq!(o.payload_delivered, vec![5, 6, 7]);
}

#[test]
fn deeper_pipelines_still_deliver() {
    let config = SimConfig {
        pipestages: 2,
        wire_delay: 1,
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    let o = sim.send_and_wait(6, 2, &[8; 10], 800).expect("delivery");
    assert_eq!(o.payload_delivered, vec![8; 10]);
    // Latency grows with the extra pipeline depth.
    assert!(o.network_latency() > 30);
}

#[test]
fn reset_stats_zeroes_every_registry_slot() {
    let mut sim = fig1_sim();
    for src in 0..16 {
        sim.send(src, (src + 3) % 16, &[src as u16; 6]);
    }
    sim.run(300);
    let total_before = sim.telemetry().counters().total(RouterCounter::Opens);
    assert!(total_before > 0, "traffic must register");

    sim.reset_stats();
    let reg = sim.telemetry();
    for ((stage, router), cell) in reg.counters().iter() {
        assert!(
            cell.is_zero(),
            "registry slot r{stage}.{router} not zeroed by reset_stats"
        );
    }
    for ((stage, router), cell) in reg.deltas().iter() {
        assert!(
            cell.is_zero(),
            "delta slot r{stage}.{router} survived reset"
        );
    }
    assert_eq!(reg.syncs(), 0, "series history restarts");

    // Routers keep cumulative counters — the registry rebases so
    // post-reset observation measures only post-reset traffic.
    sim.send(0, 9, &[1, 2, 3]);
    sim.run(300);
    let opens_after = sim.telemetry().counters().total(RouterCounter::Opens);
    assert!(opens_after > 0 && opens_after < total_before);
}

#[test]
fn trace_interval_zero_clamps_to_every_cycle() {
    let mut sim = fig1_sim();
    sim.set_trace_interval(0);
    assert_eq!(sim.telemetry().interval(), 1, "0 clamps to 1");
    sim.enable_trace(0);
    sim.send(4, 13, &[7; 5]);
    sim.run(300);
    let grants = sim
        .trace()
        .unwrap()
        .of_kind(|e| matches!(e, TraceEvent::Granted { .. }));
    assert!(!grants.is_empty(), "tracing still observes events");
}

#[test]
fn telemetry_snapshot_leaves_registry_cadence_undisturbed() {
    let mut sim = fig1_sim();
    sim.send(2, 8, &[3; 4]);
    sim.run(200);
    let syncs_before = sim.telemetry().syncs();
    let snap = sim.telemetry_snapshot("probe");
    assert_eq!(snap.cycles, sim.now());
    assert!(snap.counters.total(RouterCounter::Opens) > 0);
    // Snapshotting syncs a clone: the live registry's sync count and
    // deltas are untouched.
    assert_eq!(sim.telemetry().syncs(), syncs_before);
}

#[test]
fn self_healing_masks_a_corrupting_link_from_evidence_alone() {
    let config = SimConfig {
        self_heal: true,
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    // Corrupt one of endpoint 4's route's stage-0 links; the healer
    // only ever sees the reply evidence, never this fault set.
    let digits = sim.topology().route_digits(9);
    let (r0, _) = sim.topology().injection(4, 0);
    let bad = LinkId::new(0, r0, digits[0] * sim.topology().stage_spec(0).dilation);
    let mut faults = FaultSet::new();
    faults.break_link(bad, FaultKind::CorruptData { xor: 0x04 });
    sim.apply_faults(faults);
    for _ in 0..20 {
        let o = sim
            .send_and_wait(4, 9, &[1, 2, 3, 4], 4000)
            .expect("delivered despite the corrupting link");
        assert_eq!(o.payload_delivered, vec![1, 2, 3, 4]);
        if sim.healed_links().contains(&bad) {
            break;
        }
    }
    assert!(
        sim.healed_links().contains(&bad),
        "diagnosis must name the faulted link, healed {:?}",
        sim.healed_links()
    );
    // The loop's work shows up in the telemetry spine: a mismatch
    // detected, both port ends masked, and the masked state exercised
    // by later retries.
    let snap = sim.telemetry_snapshot("heal");
    assert!(snap.counters.total(RouterCounter::ChecksumMismatches) > 0);
    assert!(snap.counters.total(RouterCounter::MasksApplied) >= 2);
    // Traffic keeps flowing after the mask.
    let o = sim
        .send_and_wait(4, 9, &[9, 8, 7], 4000)
        .expect("delivered");
    assert_eq!(o.payload_delivered, vec![9, 8, 7]);
}

#[test]
fn self_healing_masks_a_dead_link_where_the_trail_goes_cold() {
    let config = SimConfig {
        self_heal: true,
        endpoint: EndpointConfig {
            timeout: 120,
            ..EndpointConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    let digits = sim.topology().route_digits(9);
    let (r0, _) = sim.topology().injection(4, 0);
    let bad = LinkId::new(0, r0, digits[0] * sim.topology().stage_spec(0).dilation);
    let mut faults = FaultSet::new();
    faults.break_link(bad, FaultKind::Dead);
    sim.apply_faults(faults);
    // A dead link eats the forward stream, but the routers before
    // it still reverse and report clean status + checksums — the
    // trail simply goes cold (`NoAck` with truncated evidence).
    // Diagnosis pins the fault on the link past the last reporting
    // router and masks exactly the dead link.
    for _ in 0..10 {
        let o = sim
            .send_and_wait(4, 9, &[5, 6], 8000)
            .expect("retries route around the dead link");
        assert_eq!(o.payload_delivered, vec![5, 6]);
        if sim.healed_links().contains(&bad) {
            break;
        }
    }
    assert!(
        sim.healed_links().contains(&bad),
        "diagnosis must localize the dead link, healed {:?}",
        sim.healed_links()
    );
}

#[test]
fn self_healing_masks_the_injection_port_into_a_dead_entry_router() {
    let config = SimConfig {
        self_heal: true,
        endpoint: EndpointConfig {
            timeout: 120,
            ..EndpointConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    let (r0, _) = sim.topology().injection(4, 0);
    let mut faults = FaultSet::new();
    faults.kill_router(0, r0);
    sim.apply_faults(faults);
    // A dead entry router swallows the stream before any status word
    // is generated: the record is empty and no reverse activity is
    // ever seen. The wire sweep finds every link electrically sound,
    // so the only remaining suspect is the injection port itself.
    for _ in 0..10 {
        let o = sim
            .send_and_wait(4, 9, &[7, 7], 8000)
            .expect("retries route around the dead entry router");
        assert_eq!(o.payload_delivered, vec![7, 7]);
        if sim.healed_injections().contains(&(4, 0)) {
            break;
        }
    }
    assert!(
        sim.healed_injections().contains(&(4, 0)),
        "the sweep must fall back to masking the injection port, healed {:?}",
        sim.healed_injections()
    );
    assert!(
        sim.healed_links().is_empty(),
        "no inter-stage link is actually faulty, healed {:?}",
        sim.healed_links()
    );
}

#[test]
fn self_healing_is_engine_equivalent() {
    let run = |engine: EngineKind| {
        let config = SimConfig {
            self_heal: true,
            endpoint: EndpointConfig {
                timeout: 150,
                ..EndpointConfig::default()
            },
            engine,
            ..SimConfig::default()
        };
        let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
        let mut faults = FaultSet::new();
        faults.break_link(LinkId::new(1, 2, 1), FaultKind::CorruptData { xor: 0x11 });
        faults.break_link(LinkId::new(0, 5, 2), FaultKind::Dead);
        sim.apply_faults(faults);
        for src in 0..16 {
            sim.send(src, (src + 11) % 16, &[src as u16; 5]);
        }
        sim.run(6_000);
        let mut outs: Vec<_> = sim
            .drain_outcomes()
            .iter()
            .map(|o| (o.src, o.dest, o.completed_at, o.retries, o.status))
            .collect();
        outs.sort_unstable();
        (outs, sim.healed_links().to_vec())
    };
    let flat = run(EngineKind::Flat);
    let reference = run(EngineKind::Reference);
    assert_eq!(flat.0, reference.0, "outcome streams must match");
    assert_eq!(flat.1, reference.1, "healing decisions must match");
}

#[test]
fn unreachable_destination_exhausts_attempts_and_quiesces() {
    // A dead destination can never acknowledge: without an attempt
    // budget the source would retry forever (the livelock case the
    // give-up path exists for).
    let config = SimConfig {
        endpoint: EndpointConfig {
            timeout: 120,
            max_retries: 3,
            ..EndpointConfig::default()
        },
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure1(), &config).unwrap();
    let mut faults = FaultSet::new();
    faults.kill_endpoint(9);
    sim.apply_faults(faults);
    sim.send(4, 9, &[1, 2]);
    let mut cycles = 0;
    while !sim.is_quiescent() && cycles < 30_000 {
        sim.tick();
        cycles += 1;
    }
    assert!(
        sim.is_quiescent(),
        "the attempt budget must end the livelock"
    );
    let outs = sim.drain_outcomes();
    assert_eq!(outs.len(), 1, "the give-up is an outcome, not a loss");
    match outs[0].status {
        DeliveryStatus::Undeliverable { attempts } => assert_eq!(attempts, 3),
        DeliveryStatus::Delivered => panic!("cannot deliver to a dead endpoint"),
    }
    assert_eq!(outs[0].retries, 3);
}
