//! Differential scenario fuzzing at campaign scale: ≥ 100 seeded
//! random scenarios, each decoded from its own encoding and replayed
//! through both tick engines, demanding identical outcome streams.
//!
//! This is the scenario-space generalization of the golden-equivalence
//! suite: instead of hand-picked workload shapes, the whole
//! [`Scenario`] — topology, wiring seed, sim seed, protocol knobs,
//! static faults, timed injections, send schedule — is drawn from a
//! seeded generator, so every run of this test covers the same 100
//! points and any failure names the seed that reproduces it.

use metro_sim::scenario::fuzz::{differential_check, fuzz_campaign, random_scenario};
use metro_sim::scenario::{codec, run_scenario};

/// The acceptance-criteria campaign: 100 seeded scenarios, Flat vs
/// Reference, full outcome-stream equality.
#[test]
fn differential_fuzz_100_scenarios() {
    let checked = fuzz_campaign(0xD1FF_5EED, 100).expect("engines must agree on every scenario");
    assert_eq!(checked, 100);
}

/// Replaying one scenario twice is bit-identical — the scenario-level
/// statement of the harness's per-point seed discipline (satellite:
/// seed plumbed fully through `SimConfig`/`Scenario`).
#[test]
fn scenario_reruns_are_bit_identical() {
    for seed in [3u64, 0xAB, 0xF00D] {
        let scenario = random_scenario(seed);
        let a = run_scenario(&scenario).expect("runnable");
        let b = run_scenario(&scenario).expect("runnable");
        assert_eq!(a, b, "seed {seed:#x}: reruns diverged");
        assert_eq!(a.outcome_digest(), b.outcome_digest());
        // And through a full JSON round-trip: parse(render(encode)) →
        // run must match the in-memory scenario's run.
        let text = codec::encode(&scenario).render();
        let decoded = codec::from_text(&text).expect("decodes");
        let c = run_scenario(&decoded).expect("runnable");
        assert_eq!(a, c, "seed {seed:#x}: JSON round-trip changed the run");
    }
}

/// A scenario that injects faults mid-run still keeps both engines in
/// lockstep (directed complement to the random campaign).
#[test]
fn injection_heavy_scenarios_stay_in_lockstep() {
    let mut found = 0;
    for seed in 0..64u64 {
        let scenario = random_scenario(seed);
        if scenario.injections.is_empty() && scenario.faults.is_empty() {
            continue;
        }
        found += 1;
        differential_check(&scenario).expect("faulted scenario diverged");
        if found >= 8 {
            return;
        }
    }
    assert!(found > 0, "generator never produced a faulted scenario");
}
