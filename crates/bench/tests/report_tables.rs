//! `metro report` renders per-stage tables from telemetry sidecars —
//! pinned end to end for the fig3 and fault_sweep artifacts' quick
//! representative cells, so the whole spine (router counters → registry
//! → snapshot codec → sidecar file → report renderer) is covered by one
//! deterministic expectation.

use metro_bench::{report_cli, scenarios};
use metro_harness::ResultsDir;
use metro_sim::experiment::{
    point_seed, run_fault_point_with_telemetry, run_load_point_with_telemetry, SweepConfig,
};

fn temp_results(tag: &str) -> ResultsDir {
    let dir =
        std::env::temp_dir().join(format!("metro-report-tables-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ResultsDir::new(dir)
}

/// The fig3 artifact's telemetry cell: quick profile, load 0.40
/// (sweep index 7), the same seeding `metro run fig3 --quick` uses.
fn fig3_sidecar(results: &ResultsDir) {
    let cfg = scenarios::sweep_for("fig3", true);
    let cell_cfg = SweepConfig {
        seed: point_seed(cfg.seed, 7),
        ..cfg
    };
    let (_, snap) = run_load_point_with_telemetry(&cell_cfg, 0.40, "fig3");
    results
        .write_json("fig3.telemetry", &snap.to_json())
        .unwrap();
}

/// The fault_sweep artifact's telemetry cell: quick profile, fault-free
/// baseline at load 0.3 with the grid-index-0 seed.
fn fault_sweep_sidecar(results: &ResultsDir) {
    let cfg = scenarios::sweep_for("fault_sweep", true);
    let cell_cfg = SweepConfig {
        seed: point_seed(cfg.seed, 0),
        ..cfg
    };
    let (_, snap) = run_fault_point_with_telemetry(&cell_cfg, 0.3, 0, 0, "fault_sweep");
    results
        .write_json("fault_sweep.telemetry", &snap.to_json())
        .unwrap();
}

#[test]
fn fig3_report_table_is_pinned() {
    let results = temp_results("fig3");
    fig3_sidecar(&results);
    let text = report_cli::render_dir(results.root(), &["fig3".to_string()]).unwrap();
    assert_eq!(
        text,
        "== fig3 :: flat engine, 3824 cycles, telemetry interval 1 ==\n\
         stage routers     opens    grants    blocks  block% reclaims    turns    drops      words   util%\n\
         \x20   0      16      5892      5227       665   11.3%      665     3797     3804      80571 131.69%\n\
         \x20   1      16      5118      4681       437    8.5%      437     3688     3690      75439 123.30%\n\
         \x20   2      32      4604      3581      1023   22.2%     1023     3612     3613      68299  55.81%\n\
         total      64     15614     13489      2125   13.6%     2125    11097    11107     224309  91.65%\n\
         latency: count 3526  mean 99.0  p50 72  p95 271  p99 476  min 30  max 585\n"
    );
    let _ = std::fs::remove_dir_all(results.root());
}

#[test]
fn fault_sweep_report_table_is_pinned() {
    let results = temp_results("fault-sweep");
    fault_sweep_sidecar(&results);
    let text = report_cli::render_dir(results.root(), &["fault_sweep".to_string()]).unwrap();
    assert_eq!(
        text,
        "== fault_sweep :: flat engine, 3666 cycles, telemetry interval 1 ==\n\
         stage routers     opens    grants    blocks  block% reclaims    turns    drops      words   util%\n\
         \x20   0      16      3842      3589       253    6.6%      253     2843     2848      59360 101.20%\n\
         \x20   1      16      3538      3355       183    5.2%      183     2794     2797      56831  96.89%\n\
         \x20   2      32      3322      2742       580   17.5%      580     2760     2762      52286  44.57%\n\
         total      64     10702      9686      1016    9.5%     1016     8397     8407     168477  71.81%\n\
         latency: count 2710  mean 55.8  p50 43  p95 123  p99 173  min 30  max 293\n"
    );
    let _ = std::fs::remove_dir_all(results.root());
}

#[test]
fn reports_concatenate_in_name_order() {
    let results = temp_results("both");
    fig3_sidecar(&results);
    fault_sweep_sidecar(&results);
    let text = report_cli::render_dir(results.root(), &[]).unwrap();
    let fault_at = text.find("== fault_sweep").unwrap();
    let fig_at = text.find("== fig3").unwrap();
    assert!(fault_at < fig_at, "sidecar discovery sorts by file name");
    let _ = std::fs::remove_dir_all(results.root());
}
