//! The checked-in scenario corpus (`scenarios/*.json`) stays canonical,
//! in sync with the in-code catalog, and deterministic to replay.

use metro_bench::scenarios;
use metro_sim::scenario::{codec, run_scenario};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("scenarios/ directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_covers_every_named_scenario() {
    let stems: Vec<String> = corpus_files()
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    for name in scenarios::NAMED {
        assert!(
            stems.iter().any(|s| s == name),
            "scenarios/{name}.json is missing — regenerate with `metro scenario dump {name}`"
        );
    }
    assert_eq!(stems.len(), scenarios::NAMED.len(), "stray corpus file");
}

#[test]
fn corpus_files_are_canonical_and_match_the_catalog() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let scenario =
            codec::from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Byte-stable: re-encoding reproduces the file exactly.
        assert_eq!(
            codec::encode(&scenario).render(),
            text,
            "{} is not canonical — regenerate with `metro scenario dump`",
            path.display()
        );
        // In sync with the in-code catalog the artifacts emit from.
        let expected = scenarios::named(&scenario.name)
            .unwrap_or_else(|| panic!("{}: not in the catalog", path.display()));
        assert_eq!(
            scenario,
            expected,
            "{} drifted from the scenarios::named catalog",
            path.display()
        );
    }
}

#[test]
fn corpus_scenarios_replay_deterministically() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let scenario = codec::from_text(&text).unwrap();
        let a = run_scenario(&scenario).expect("runnable");
        let b = run_scenario(&scenario).expect("runnable");
        assert_eq!(a, b, "{}: replay diverged", path.display());
        assert!(
            !a.outcomes.is_empty(),
            "{}: scenario produced no outcomes",
            path.display()
        );
    }
}
