//! Shard identity over the whole checked-in corpus: every
//! `scenarios/*.json` file must replay bit-identically on the sharded
//! Flat engine at shards ∈ {2, 4} versus the single-threaded tick —
//! outcome streams, run summaries, *and* telemetry snapshots.
//!
//! The unit-level shard checks (golden-equivalence proptests, the
//! shard fuzzer) cover randomized small fabrics; this suite pins the
//! real corpus, including the 1024-endpoint `metro1k` fabric the
//! sharded engine exists for.

use metro_sim::network::EngineKind;
use metro_sim::scenario::{codec, run_scenario_with_sim};
use std::path::PathBuf;

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("scenarios/ directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn corpus_replays_bit_identically_at_every_shard_count() {
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let base = codec::from_text(&text).unwrap();

        let mut single = base.clone();
        single.sim.engine = EngineKind::Flat;
        single.sim.shards = 1;
        let (expect, mut sim1) = run_scenario_with_sim(&single).expect("runnable");
        let snap1 = sim1.telemetry_snapshot(&base.name).to_json().render();

        for shards in [2usize, 4] {
            let mut sharded = base.clone();
            sharded.sim.engine = EngineKind::Flat;
            sharded.sim.shards = shards;
            let (got, mut sim_n) = run_scenario_with_sim(&sharded).expect("runnable");
            assert_eq!(
                got,
                expect,
                "{}: result diverged at shards={shards}",
                path.display()
            );
            let snap_n = sim_n.telemetry_snapshot(&base.name).to_json().render();
            assert_eq!(
                snap_n,
                snap1,
                "{}: telemetry snapshot diverged at shards={shards}",
                path.display()
            );
        }
    }
}
