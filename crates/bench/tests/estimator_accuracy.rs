//! Differential validation of the analytic estimator: every scenario in
//! the checked-in corpus is replayed cycle-accurately on the flat
//! engine and estimated analytically, and the estimator's latency
//! quantiles must stay within bounds (p50 ≤15%, p95 ≤25%) of the
//! ground truth — the accuracy contract CI enforces.

use metro_sim::engine::analytic::estimate_latency;
use metro_sim::scenario::{codec, run_scenario, Scenario, WorkloadSpec};
use metro_sim::LatencyStats;
use std::path::PathBuf;

/// Maximum relative error at the median.
const P50_BOUND: f64 = 0.15;
/// Maximum relative error at the 95th percentile.
const P95_BOUND: f64 = 0.25;

fn corpus() -> Vec<(String, Scenario)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("scenarios/ directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).unwrap();
            (name, codec::from_text(&text).unwrap())
        })
        .collect()
}

fn rel_err(estimate: u64, truth: u64) -> f64 {
    if truth == 0 {
        return if estimate == 0 { 0.0 } else { f64::INFINITY };
    }
    (estimate as f64 - truth as f64).abs() / truth as f64
}

/// Ground-truth total-latency quantiles from a cycle-accurate replay:
/// the load point for `Load` workloads, the outcome stream for `Sends`.
fn truth_quantiles(scenario: &Scenario) -> (u64, u64) {
    let result = run_scenario(scenario).expect("corpus scenario must replay");
    match &result.point {
        Some(p) => (p.p50_latency, p.p95_latency),
        None => {
            let mut h = LatencyStats::new();
            for o in &result.outcomes {
                h.record(o.total_latency());
            }
            (h.percentile(50.0), h.percentile(95.0))
        }
    }
}

#[test]
fn estimator_tracks_the_flat_engine_across_the_corpus() {
    let mut violations = Vec::new();
    for (name, scenario) in corpus() {
        let mut est = estimate_latency(&scenario).expect("corpus scenario must estimate");
        let (est_p50, est_p95) = (
            est.total_latency.percentile(50.0),
            est.total_latency.percentile(95.0),
        );
        let (true_p50, true_p95) = truth_quantiles(&scenario);
        let (e50, e95) = (rel_err(est_p50, true_p50), rel_err(est_p95, true_p95));
        println!(
            "{name:>14}: p50 {est_p50:>4} vs {true_p50:>4} ({:>5.1}%)  p95 {est_p95:>4} vs {true_p95:>4} ({:>5.1}%)",
            e50 * 100.0,
            e95 * 100.0
        );
        if e50 > P50_BOUND {
            violations.push(format!(
                "{name}: p50 estimate {est_p50} vs truth {true_p50} ({:.1}% > {:.0}%)",
                e50 * 100.0,
                P50_BOUND * 100.0
            ));
        }
        if e95 > P95_BOUND {
            violations.push(format!(
                "{name}: p95 estimate {est_p95} vs truth {true_p95} ({:.1}% > {:.0}%)",
                e95 * 100.0,
                P95_BOUND * 100.0
            ));
        }
    }
    assert!(
        violations.is_empty(),
        "estimator out of bounds:\n{}",
        violations.join("\n")
    );
}

#[test]
fn analytic_scenarios_dispatch_through_run_scenario() {
    // Flipping a corpus scenario's engine to analytic must route
    // run_scenario to the estimator and reproduce estimate_latency's
    // result exactly.
    let (_, mut scenario) = corpus()
        .into_iter()
        .find(|(name, _)| name == "figure1")
        .expect("figure1 in corpus");
    scenario.sim.engine = metro_sim::EngineKind::Analytic;
    let via_run = run_scenario(&scenario).unwrap();
    let direct = estimate_latency(&scenario).unwrap();
    assert_eq!(via_run, direct.result);
    assert!(via_run.delivered > 0);
}

#[test]
fn estimator_counts_match_the_load_replay() {
    // The estimator replays the exact arrival streams, so for Load
    // scenarios its message population must be close to the flat
    // engine's (small slack: in-flight boundary effects).
    for (name, scenario) in corpus() {
        if !matches!(scenario.workload, WorkloadSpec::Load { .. }) {
            continue;
        }
        let est = estimate_latency(&scenario).unwrap();
        let truth = run_scenario(&scenario).unwrap();
        let (e, t) = (
            est.result.outcomes.len() as f64,
            truth.outcomes.len() as f64,
        );
        assert!(
            (e - t).abs() / t < 0.1,
            "{name}: estimated {e} outcomes vs {t} simulated"
        );
    }
}
