//! Fat-tree construction budgets: how many METRO parts a fat-tree
//! machine needs, per DeHon's construction arithmetic (\[7\]) — the
//! second network class the paper names (§2), with the pin-count
//! tradeoff width cascading addresses (§5.1).

use metro_harness::{Artifact, ArtifactOutput, Json, RunCtx};
use metro_topo::fattree::{FatTree, FatTreeSpec};
use std::fmt::Write as _;

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "fattree_budget",
        description: "router budgets for binary fat-trees from METRO parts",
        quick_profile: "identical to full (pure arithmetic)",
        full_profile: "4-, 5-, and 6-level binary fat-trees, 4x4/8x8/16x16 parts",
        run,
    }
}

fn run(_ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let mut out = String::new();
    let _ = writeln!(out, "=== Fat-tree router budgets from METRO parts ===\n");
    let mut rows = Vec::new();
    for (levels, leaf) in [(4usize, 2usize), (5, 2), (6, 2)] {
        let tree = FatTree::build(&FatTreeSpec::binary(levels, leaf))
            .map_err(|e| format!("fat-tree build ({levels} levels): {e}"))?;
        let _ = writeln!(
            out,
            "binary fat-tree, {} leaves, leaf capacity {leaf}, bisection {} wires:",
            tree.leaves(),
            tree.bisection()
        );
        let _ = writeln!(
            out,
            "  {:<28} {:>10} {:>10} {:>10}",
            "part (i x o)", "4x4", "8x8", "16x16"
        );
        let total4 = tree.total_routers(4, 4);
        let total8 = tree.total_routers(8, 8);
        let total16 = tree.total_routers(16, 16);
        let _ = writeln!(
            out,
            "  {:<28} {:>10} {:>10} {:>10}",
            "routers for the whole tree", total4, total8, total16
        );
        let caps: Vec<usize> = (1..=levels).map(|d| tree.capacity(d)).collect();
        let cap_strs: Vec<String> = caps.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(
            out,
            "  channel capacities root->leaf: {}\n",
            cap_strs.join(" -> ")
        );
        rows.push(Json::obj([
            ("levels", Json::from(levels)),
            ("leaves", Json::from(tree.leaves())),
            ("bisection", Json::from(tree.bisection())),
            ("routers_4x4", Json::from(total4)),
            ("routers_8x8", Json::from(total8)),
            ("routers_16x16", Json::from(total16)),
            (
                "capacities_root_to_leaf",
                Json::Arr(caps.into_iter().map(Json::from).collect()),
            ),
        ]));
    }
    let _ = writeln!(
        out,
        "reading: bigger parts cut the router count superlinearly near the"
    );
    let _ = writeln!(
        out,
        "root (wide channels concentrate); width cascading lets narrow parts"
    );
    let _ = writeln!(
        out,
        "serve the wide upper channels at more pins — the i/o-pin versus"
    );
    let _ = writeln!(out, "datapath-width trade §5.1 motivates.");

    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("fattree_budget")),
        ("points", Json::Arr(rows)),
    ]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("trees", Json::from(3u64))]),
        scenario: None,
        telemetry: None,
    })
}
