//! Analytic-estimator benchmark: the S13 latency model against the
//! cycle-accurate Flat engine on the 1024-endpoint `metro1k` fabric.
//!
//! The estimator exists to answer "what would this scenario's latency
//! distribution look like" without building routers or ticking wires,
//! so the artifact measures exactly that trade: one timed Flat replay
//! of the `metro1k` load scenario, then the analytic estimate of the
//! same scenario timed over several repetitions (a single estimate is
//! too fast for a stable wall-clock reading). The speedup must be at
//! least [`MIN_SPEEDUP`]× — the estimator's whole value proposition —
//! and the report places the estimated p50/p95/p99 next to the
//! cycle-accurate truth so the speed number is never read without its
//! accuracy. Full runs refresh the repo-root `BENCH_estimate.json`
//! trajectory file, the same trail `BENCH_tick.json` and
//! `BENCH_shard.json` leave for the perf guard.

use metro_harness::{Artifact, ArtifactOutput, Json, ResultsDir, RunCtx};
use metro_sim::engine::analytic::estimate_latency;
use metro_sim::scenario::run_scenario;
use metro_sim::LatencyStats;
use std::fmt::Write as _;
use std::time::Instant;

/// The contract: estimating must beat cycle-accurate replay by at
/// least this factor on `metro1k`.
const MIN_SPEEDUP: f64 = 100.0;

/// Quantiles reported for both the estimate and the truth.
const QUANTILES: [f64; 3] = [50.0, 95.0, 99.0];

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "estimate_bench",
        description: "analytic estimator vs flat engine on metro1k (speedup + quantiles)",
        quick_profile: "3 estimate reps (no BENCH_estimate.json refresh)",
        full_profile: "20 estimate reps, refreshes BENCH_estimate.json",
        run,
    }
}

fn quantiles(stats: &mut LatencyStats) -> [u64; 3] {
    QUANTILES.map(|q| stats.percentile(q))
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let reps: u32 = if ctx.quick { 3 } else { 20 };
    let scenario = crate::scenarios::named("metro1k").expect("metro1k is in the catalog");

    // Cycle-accurate ground truth, timed. One replay: the flat run is
    // the slow side of the ratio, and it is deterministic. The catalog
    // scenario runs shard-native (shards = 0, host auto); the timed
    // replay pins shards = 1 so the ratio compares one engine to one
    // estimator on one core — sharding is an orthogonal speedup with
    // its own benchmark (`shard_bench`), and shard identity makes the
    // result bits independent of the pin.
    let mut timed = scenario.clone();
    timed.sim.shards = 1;
    let started = Instant::now();
    let truth = run_scenario(&timed).map_err(|e| e.to_string())?;
    let flat_secs = started.elapsed().as_secs_f64();
    let mut truth_stats = LatencyStats::new();
    for o in &truth.outcomes {
        truth_stats.record(o.total_latency());
    }
    let truth_q = quantiles(&mut truth_stats);

    // The analytic estimate, timed over `reps` repetitions; the
    // minimum is the reading (scheduler noise only ever adds time).
    let mut estimate = None;
    let mut estimate_secs = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        estimate = Some(estimate_latency(&scenario).map_err(|e| e.to_string())?);
        estimate_secs = estimate_secs.min(started.elapsed().as_secs_f64());
    }
    let mut estimate = estimate.expect("reps >= 1");
    let est_q = quantiles(&mut estimate.total_latency);

    let speedup = flat_secs / estimate_secs;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Analytic estimator vs Flat engine: metro1k (1024 endpoints, 5 stages) ===\n"
    );
    let _ = writeln!(
        out,
        "flat replay     : {flat_secs:>9.4}s  ({} outcomes)",
        truth.outcomes.len()
    );
    let _ = writeln!(
        out,
        "analytic        : {estimate_secs:>9.6}s  ({} outcomes, best of {reps} reps)",
        estimate.result.outcomes.len()
    );
    let _ = writeln!(
        out,
        "speedup         : {speedup:>9.0}x  (floor {MIN_SPEEDUP:.0}x)\n"
    );
    let _ = writeln!(out, "                   p50    p95    p99");
    let _ = writeln!(
        out,
        "flat (truth)    : {:>4}   {:>4}   {:>4}",
        truth_q[0], truth_q[1], truth_q[2]
    );
    let _ = writeln!(
        out,
        "analytic        : {:>4}   {:>4}   {:>4}",
        est_q[0], est_q[1], est_q[2]
    );

    if speedup < MIN_SPEEDUP {
        return Err(format!(
            "analytic estimator speedup {speedup:.1}x is below the {MIN_SPEEDUP:.0}x floor \
             (flat {flat_secs:.4}s vs estimate {estimate_secs:.6}s)"
        ));
    }

    let json = Json::obj([
        ("benchmark", Json::from("analytic_estimate")),
        ("topology", Json::from("metro1k")),
        ("estimate_reps", Json::from(u64::from(reps))),
        ("flat_seconds", Json::from(flat_secs)),
        ("estimate_seconds", Json::from(estimate_secs)),
        ("speedup", Json::from(speedup)),
        ("min_speedup", Json::from(MIN_SPEEDUP)),
        (
            "flat_quantiles",
            Json::arr(truth_q.iter().map(|&v| Json::from(v))),
        ),
        (
            "estimate_quantiles",
            Json::arr(est_q.iter().map(|&v| Json::from(v))),
        ),
        ("flat_outcomes", Json::from(truth.outcomes.len())),
        (
            "estimate_outcomes",
            Json::from(estimate.result.outcomes.len()),
        ),
    ]);

    if !ctx.quick {
        // The trajectory file lives at the repo root (one benchmark,
        // one file) but goes through the same validated writer as
        // results/. Timings drift host to host, so the perf guard
        // gates on the recorded speedup ratio, not raw seconds.
        let root = ResultsDir::new(".");
        root.write_json("BENCH_estimate", &json)
            .map_err(|e| e.to_string())?;
        let _ = writeln!(out, "\nwrote BENCH_estimate.json");
    }

    Ok(ArtifactOutput {
        human: out,
        json,
        points: 2,
        params: Json::obj([("estimate_reps", Json::from(u64::from(reps)))]),
        scenario: Some(crate::scenarios::emit(&scenario)),
        telemetry: None,
    })
}
