//! Ablation: one transmit engine versus two. The Figure 3 caption
//! restricts each endpoint "to only use one of its entering network
//! ports at a time" — the parallelism-limited model; this experiment
//! measures what the restriction costs.

use metro_harness::{par_map, Artifact, ArtifactOutput, Json, RunCtx};
use metro_sim::experiment::run_load_point;
use std::fmt::Write as _;

const LOADS: [f64; 3] = [0.3, 0.6, 0.9];

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "ablation_concurrency",
        description: "one vs two transmit engines per endpoint",
        quick_profile: "2 engine counts × 3 loads, 2.5k measured cycles",
        full_profile: "2 engine counts × 3 loads, 6k measured cycles",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let cfg = crate::scenarios::sweep_for("ablation_concurrency", ctx.quick);

    let combos: Vec<(usize, f64)> = [1usize, 2]
        .iter()
        .flat_map(|&engines| LOADS.iter().map(move |&l| (engines, l)))
        .collect();
    let results = par_map(ctx.jobs, &combos, |_, &(engines, load)| {
        let mut cfg = cfg.clone();
        cfg.sim.endpoint.max_concurrent = engines;
        run_load_point(&cfg, load)
    });

    let mut out = String::new();
    let _ = writeln!(out, "=== Ablation: transmit engines per endpoint ===\n");
    let _ = writeln!(
        out,
        "{:>8} {:>6} {:>11} {:>8} {:>12} {:>10}",
        "engines", "load", "mean(cyc)", "p95", "retries/msg", "delivered"
    );
    let _ = writeln!(out, "{}", "-".repeat(62));
    let mut rows = Vec::new();
    for ((engines, load), p) in combos.iter().zip(&results) {
        let _ = writeln!(
            out,
            "{engines:>8} {load:>6.1} {:>11.1} {:>8} {:>12.3} {:>10}",
            p.mean_latency, p.p95_latency, p.retries_per_message, p.delivered
        );
        rows.push(Json::obj([
            ("engines", Json::from(*engines)),
            ("load", Json::from(*load)),
            ("mean_latency", Json::from(p.mean_latency)),
            ("p95_latency", Json::from(p.p95_latency)),
            ("retries_per_message", Json::from(p.retries_per_message)),
            ("delivered", Json::from(p.delivered)),
        ]));
    }
    let _ = writeln!(
        out,
        "\nexpected shape: identical until a single engine saturates (~0.55 of"
    );
    let _ = writeln!(
        out,
        "capacity); past that, the second engine converts queueing delay into"
    );
    let _ = writeln!(
        out,
        "delivered throughput — at the cost of more in-network contention."
    );

    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("ablation_concurrency")),
        ("topology", Json::from("figure3")),
        ("measured_cycles", Json::from(cfg.measure)),
        ("seed", Json::from(cfg.seed)),
        ("points", Json::Arr(rows)),
    ]);
    let scenario = crate::scenarios::load_scenario("ablation_concurrency", &cfg, LOADS[2]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("measure", Json::from(cfg.measure))]),
        scenario: Some(crate::scenarios::emit(&scenario)),
        telemetry: None,
    })
}
