//! Regenerates Table 2: the configuration options, their instance
//! counts, bit budgets, and the resulting scan-register width for
//! representative METRO parts.

use metro_core::{ArchParams, RouterConfig};
use metro_harness::{Artifact, ArtifactOutput, Json, RunCtx};
use metro_scan::registers::{dilation_bits, encode_config, vtd_bits};
use std::fmt::Write as _;

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "table2",
        description: "Table 2: configuration options and scan-register widths",
        quick_profile: "identical to full (pure arithmetic)",
        full_profile: "3 concrete parts, encoded config checked against scan_bits",
        run,
    }
}

fn run(_ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let mut out = String::new();
    let _ = writeln!(out, "=== Table 2: METRO configuration parameters ===\n");
    let _ = writeln!(
        out,
        "{:<24} {:<12} {:<26}",
        "Option", "Instances", "Bits per instance"
    );
    let _ = writeln!(out, "{}", "-".repeat(64));
    for (option, instances, bits) in [
        ("Port On/Off", "i + o", "1/port"),
        ("Off Port Drive Output", "i + o", "1/port"),
        ("Turn Delay", "i + o", "ceil(log2(max_vtd))/port"),
        ("Fast Reclaim", "i + o", "1/port"),
        ("Swallow", "i", "1/forward port (hw = 0 only)"),
        ("Dilation (d)", "1", "log2(max_d)/router"),
    ] {
        let _ = writeln!(out, "{option:<24} {instances:<12} {bits:<26}");
    }

    let _ = writeln!(out, "\nscan-register widths for concrete parts:");
    let mut rows = Vec::new();
    for (name, params) in [
        ("METROJR (i=o=w=4)", ArchParams::metrojr()),
        ("RN1-class (i=o=w=8)", ArchParams::rn1()),
        ("METRO-8 (i=o=8, w=4)", ArchParams::metro8()),
    ] {
        let cfg = RouterConfig::new(&params)
            .build()
            .map_err(|e| format!("router config for {name}: {e}"))?;
        let image = encode_config(&cfg, &params);
        let vtd = vtd_bits(params.max_turn_delay());
        let dil = dilation_bits(params.max_dilation());
        let _ = writeln!(
            out,
            "  {:<22} vtd bits {} | dilation bits {} | total config register: {} bits",
            name,
            vtd,
            dil,
            image.len()
        );
        if image.len() != cfg.scan_bits(&params) {
            return Err(format!(
                "{name}: encoded image is {} bits but scan_bits reports {}",
                image.len(),
                cfg.scan_bits(&params)
            ));
        }
        rows.push(Json::obj([
            ("part", Json::from(name)),
            ("vtd_bits", Json::from(vtd)),
            ("dilation_bits", Json::from(dil)),
            ("config_register_bits", Json::from(image.len())),
        ]));
    }

    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("table2")),
        ("points", Json::Arr(rows)),
    ]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("parts", Json::from(3u64))]),
        scenario: None,
        telemetry: None,
    })
}
