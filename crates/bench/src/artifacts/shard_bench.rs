//! Sharded-engine throughput: the partitioned Flat tick at 1, 2, and 4
//! shards on the 1024-endpoint `metro1k` fabric (five stages, 1536
//! routers — the kind of short-haul fabric the sharded engine exists
//! for).
//!
//! Every shard count runs the identical sustained workload — each
//! endpoint re-offers an 8-word message whenever its queue drains — and
//! must complete the identical message count (sharding is execution
//! strategy, not semantics; the full bit-identity proof lives in the
//! golden-equivalence, fuzz, and corpus suites). The measured quantity
//! is simulator cycles per wall-clock second. Full runs refresh the
//! repo-root `BENCH_shard.json` trajectory file and record the host's
//! core count alongside the rates — scaling claims are only meaningful
//! where `host_parallelism >= shards`, so CI gates on that field rather
//! than trusting a rate measured on a starved host.

use metro_harness::{default_jobs, Artifact, ArtifactOutput, Json, ResultsDir, RunCtx};
use metro_sim::{NetworkSim, SimConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// Offered payload per message, in words.
const PAYLOAD_WORDS: usize = 8;
/// Cycles between workload refresh sweeps.
const OFFER_PERIOD: u64 = 32;
/// Shard counts benchmarked, in run order.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn build(shards: usize) -> NetworkSim {
    let scenario = crate::scenarios::named("metro1k").expect("metro1k is in the catalog");
    let config = SimConfig {
        shards,
        ..scenario.sim.clone()
    };
    let mut sim = NetworkSim::new(&scenario.topology, &config).expect("metro1k spec is valid");
    sim.set_trace_interval(1_024);
    sim
}

/// Keeps every endpoint's NIC queue non-empty: one fresh message per
/// endpoint every `OFFER_PERIOD` cycles, destinations striding through
/// the address space so the load spreads across the fabric.
fn offer_load(sim: &mut NetworkSim, round: u64) {
    let n = sim.topology().endpoints();
    let payload: Vec<u16> = (0..PAYLOAD_WORDS as u16).collect();
    for src in 0..n {
        let dest = (src + 1 + (round as usize * 7) % (n - 1)) % n;
        sim.send(src, dest, &payload);
    }
}

fn measure(shards: usize, warmup: u64, measured: u64) -> (f64, usize, NetworkSim) {
    let mut sim = build(shards);
    let mut round = 0u64;
    for now in 0..warmup {
        if now % OFFER_PERIOD == 0 {
            offer_load(&mut sim, round);
            round += 1;
        }
        sim.tick();
    }
    sim.drain_outcomes();
    let start = Instant::now();
    for now in 0..measured {
        if now % OFFER_PERIOD == 0 {
            offer_load(&mut sim, round);
            round += 1;
        }
        sim.tick();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let delivered = sim.drain_outcomes().len();
    (measured as f64 / elapsed, delivered, sim)
}

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "shard_bench",
        description: "sharded flat-engine throughput at 1/2/4 shards (cycles/s, metro1k)",
        quick_profile: "200 warm-up + 800 measured cycles (no BENCH_shard.json refresh)",
        full_profile: "1k warm-up + 5k measured cycles, refreshes BENCH_shard.json",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let (warmup, measured) = if ctx.quick {
        (200u64, 800u64)
    } else {
        (1_000, 5_000)
    };
    let host_parallelism = default_jobs().get();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Sharded-engine throughput: metro1k fabric (1024 endpoints, 5 stages, \
         1536 routers) ===\n"
    );
    let _ = writeln!(
        out,
        "warm-up {warmup} cycles, measured {measured} cycles, \
         {PAYLOAD_WORDS}-word messages re-offered every {OFFER_PERIOD} cycles, \
         host parallelism {host_parallelism}\n"
    );

    // The runs are timed, so they go strictly sequentially — sharing
    // cores between two timed runs would corrupt both readings.
    let mut rates = Vec::new();
    let mut delivered = Vec::new();
    let mut last_sim = None;
    for shards in SHARD_COUNTS {
        let (rate, done, sim) = measure(shards, warmup, measured);
        let _ = writeln!(
            out,
            "shards {shards} : {rate:>12.0} cycles/s  ({done} messages completed)"
        );
        rates.push(rate);
        delivered.push(done);
        last_sim = Some(sim);
    }
    if delivered.iter().any(|&d| d != delivered[0]) {
        return Err(format!(
            "shard counts completed different message counts under the identical \
             workload: {delivered:?} at shards {SHARD_COUNTS:?}"
        ));
    }

    let speedup_at_4 = rates[2] / rates[0];
    let _ = writeln!(out, "\nspeedup at 4 shards : {speedup_at_4:.2}x");
    if host_parallelism < 4 {
        let _ = writeln!(
            out,
            "(host has only {host_parallelism} core(s) — the 4-shard rate measures \
             barrier overhead, not scaling)"
        );
    }

    let json = Json::obj([
        ("benchmark", Json::from("shard_engine_throughput")),
        ("topology", Json::from("metro1k")),
        ("endpoints", Json::from(1_024u64)),
        ("routers", Json::from(1_536u64)),
        ("warmup_cycles", Json::from(warmup)),
        ("measured_cycles", Json::from(measured)),
        ("payload_words", Json::from(PAYLOAD_WORDS)),
        ("offer_period", Json::from(OFFER_PERIOD)),
        ("host_parallelism", Json::from(host_parallelism)),
        (
            "shard_counts",
            Json::arr(SHARD_COUNTS.iter().map(|&s| Json::from(s))),
        ),
        (
            "cycles_per_sec",
            Json::arr(rates.iter().map(|&r| Json::from(r))),
        ),
        ("messages_completed", Json::from(delivered[0])),
        ("speedup_at_4", Json::from(speedup_at_4)),
    ]);

    if !ctx.quick {
        // The trajectory file lives at the repo root (one benchmark, one
        // file) but goes through the same validated writer as results/.
        let root = ResultsDir::new(".");
        root.write_json("BENCH_shard", &json)
            .map_err(|e| e.to_string())?;
        let _ = writeln!(out, "\nwrote BENCH_shard.json");
    }

    let mut sim = last_sim.expect("at least one shard count ran");
    Ok(ArtifactOutput {
        human: out,
        json,
        points: SHARD_COUNTS.len(),
        params: Json::obj([
            ("warmup_cycles", Json::from(warmup)),
            ("measured_cycles", Json::from(measured)),
            ("host_parallelism", Json::from(host_parallelism)),
        ]),
        scenario: None,
        telemetry: Some(sim.telemetry_snapshot("shard_bench").to_json()),
    })
}
