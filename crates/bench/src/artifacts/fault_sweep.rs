//! §6.2: "performance degrades robustly in the face of faults".
//! Kills growing numbers of routers and links in the Figure 3 network
//! under moderate load and reports latency, retries, throughput, and
//! message loss (there must be none).

use crate::fault_points_json;
use metro_harness::{Artifact, ArtifactOutput, Json, RunCtx};
use metro_sim::experiment::{
    fault_sweep_jobs, point_seed, run_fault_point_with_telemetry, SweepConfig,
};
use std::fmt::Write as _;

/// The `(dead_routers, dead_links)` grid.
pub const GRID: [(usize, usize); 9] = [
    (0, 0),
    (1, 0),
    (2, 0),
    (4, 0),
    (0, 4),
    (0, 8),
    (2, 4),
    (4, 8),
    (6, 12),
];

/// Offered load during the sweep.
pub const LOAD: f64 = 0.3;

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "fault_sweep",
        description: "§6.2 — performance degradation under router/link faults",
        quick_profile: "9 fault points at load 0.3, 500 warmup / 3k measured cycles",
        full_profile: "9 fault points at load 0.3, 2k warmup / 12k measured cycles",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let cfg = crate::scenarios::sweep_for("fault_sweep", ctx.quick);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Fault-degradation sweep (Figure 3 network, load {LOAD}) ===\n"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>7} {:>11} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "routers", "links", "mean(cyc)", "p95", "retries/msg", "accepted", "delivered", "lost"
    );
    let _ = writeln!(out, "{}", "-".repeat(84));

    let points = fault_sweep_jobs(&cfg, LOAD, &GRID, ctx.jobs);
    let mut baseline = None;
    for p in &points {
        if p.dead_routers == 0 && p.dead_links == 0 {
            baseline = Some(p.mean_latency);
        }
        let _ = writeln!(
            out,
            "{:>8} {:>7} {:>11.1} {:>8} {:>12.3} {:>10.4} {:>10} {:>10}",
            p.dead_routers,
            p.dead_links,
            p.mean_latency,
            p.p95_latency,
            p.retries_per_message,
            p.accepted,
            p.delivered,
            p.abandoned
        );
    }
    if let Some(base) = baseline {
        let _ = writeln!(
            out,
            "\nrobust degradation: latency grows gradually from the {base:.1}-cycle baseline;\nstochastic path selection + source retry deliver every message (lost = 0)."
        );
    }

    let lost: u64 = points.iter().map(|p| p.abandoned).sum();
    let json = Json::obj([
        ("artifact", Json::from("fault_sweep")),
        ("topology", Json::from("figure3")),
        ("load", Json::from(LOAD)),
        ("warmup_cycles", Json::from(cfg.warmup)),
        ("measured_cycles", Json::from(cfg.measure)),
        ("seed", Json::from(cfg.seed)),
        ("messages_lost", Json::from(lost)),
        ("points", fault_points_json(&points)),
    ]);
    let params = Json::obj([
        ("load", Json::from(LOAD)),
        ("measure", Json::from(cfg.measure)),
        ("grid", Json::from(GRID.len())),
    ]);
    // The sweep's network and load as a declarative scenario. (The
    // grid cells themselves are fault points with their own arrival
    // RNG discipline; the sidecar records the fault-free
    // configuration they all share.)
    let scenario = crate::scenarios::load_scenario("fault_sweep", &cfg, LOAD);
    // Telemetry sidecar: the fault-free baseline cell (grid index 0)
    // with its sweep seed, so the snapshot matches the table's first
    // row.
    let cell_cfg = SweepConfig {
        seed: point_seed(cfg.seed, 0),
        ..cfg.clone()
    };
    let (_, snap) = run_fault_point_with_telemetry(&cell_cfg, LOAD, 0, 0, "fault_sweep");
    Ok(ArtifactOutput {
        human: out,
        json,
        points: points.len(),
        params,
        scenario: Some(crate::scenarios::emit(&scenario)),
        telemetry: Some(snap.to_json()),
    })
}
