//! Ablation: fast path reclamation (BCB teardown) versus detailed
//! turn-time replies on blocked connections (paper §5.1, "Path
//! Reclamation — Fast and Detailed").

use metro_harness::{par_map, Artifact, ArtifactOutput, Json, RunCtx};
use metro_sim::experiment::run_load_point;
use std::fmt::Write as _;

const LOADS: [f64; 3] = [0.2, 0.4, 0.6];

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "ablation_reclaim",
        description: "fast vs detailed path reclamation under rising load",
        quick_profile: "2 modes × 3 loads, 2.5k measured cycles",
        full_profile: "2 modes × 3 loads, 6k measured cycles",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let cfg = crate::scenarios::sweep_for("ablation_reclaim", ctx.quick);

    // One worker item per (mode, load) combination; common master seed
    // keeps the comparison paired.
    let combos: Vec<(bool, f64)> = [true, false]
        .iter()
        .flat_map(|&fast| LOADS.iter().map(move |&l| (fast, l)))
        .collect();
    let results = par_map(ctx.jobs, &combos, |_, &(fast, load)| {
        let mut cfg = cfg.clone();
        cfg.sim.fast_reclaim = fast;
        run_load_point(&cfg, load)
    });

    let mut out = String::new();
    let _ = writeln!(out, "=== Ablation: fast vs detailed path reclamation ===\n");
    let _ = writeln!(
        out,
        "{:>9} {:>6} {:>11} {:>8} {:>12} {:>10}",
        "mode", "load", "mean(cyc)", "p95", "retries/msg", "delivered"
    );
    let _ = writeln!(out, "{}", "-".repeat(62));
    let mut rows = Vec::new();
    for ((fast, load), p) in combos.iter().zip(&results) {
        let _ = writeln!(
            out,
            "{:>9} {:>6.1} {:>11.1} {:>8} {:>12.3} {:>10}",
            if *fast { "fast" } else { "detailed" },
            load,
            p.mean_latency,
            p.p95_latency,
            p.retries_per_message,
            p.delivered
        );
        rows.push(Json::obj([
            ("mode", Json::from(if *fast { "fast" } else { "detailed" })),
            ("load", Json::from(*load)),
            ("mean_latency", Json::from(p.mean_latency)),
            ("p95_latency", Json::from(p.p95_latency)),
            ("retries_per_message", Json::from(p.retries_per_message)),
            ("delivered", Json::from(p.delivered)),
        ]));
    }
    let _ = writeln!(
        out,
        "\nexpected shape: identical at low load (nothing blocks); as load grows,"
    );
    let _ = writeln!(
        out,
        "fast reclamation frees blocked paths sooner — lower latency and higher"
    );
    let _ = writeln!(
        out,
        "delivered throughput near saturation (\"Fast path reclamation allows"
    );
    let _ = writeln!(
        out,
        "stochastic search for non-faulty, uncongested paths to proceed rapidly\")."
    );

    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("ablation_reclaim")),
        ("topology", Json::from("figure3")),
        ("measured_cycles", Json::from(cfg.measure)),
        ("seed", Json::from(cfg.seed)),
        ("points", Json::Arr(rows)),
    ]);
    let scenario = crate::scenarios::load_scenario("ablation_reclaim", &cfg, LOADS[1]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("measure", Json::from(cfg.measure))]),
        scenario: Some(crate::scenarios::emit(&scenario)),
        telemetry: None,
    })
}
