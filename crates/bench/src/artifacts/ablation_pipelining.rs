//! Ablation: the pipelining options of §5.1 — internal pipestages
//! (`dp`), pipelined connection setup (`hw`), and wire pipeline depth
//! (variable turn delay) — measured in simulation cycles and projected
//! to nanoseconds with the Table 4 model.

use metro_harness::{par_map, Artifact, ArtifactOutput, Json, RunCtx};
use metro_sim::experiment::unloaded_latency;
use metro_timing::equations::{stages_32_node_4stage, LatencyModel, T_WIRE_NS};
use std::fmt::Write as _;

const SIM_GRID: [(usize, usize, usize); 8] = [
    (1, 0, 0),
    (2, 0, 0),
    (3, 0, 0),
    (1, 1, 0),
    (1, 2, 0),
    (1, 0, 1),
    (1, 0, 2),
    (2, 1, 1),
];

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "ablation_pipelining",
        description: "dp / hw / wire-delay pipelining options, simulated + analytic",
        quick_profile: "identical to full (unloaded probes are already fast)",
        full_profile: "8 simulated (dp, hw, vtd) points + 4 analytic Table 4 projections",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let mut out = String::new();
    let _ = writeln!(out, "=== Ablation: pipelining options ===\n");
    let _ = writeln!(
        out,
        "simulated unloaded latency (cycles), Figure 3 network:"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>6} {:>11} {:>16}",
        "dp", "hw", "wire delay", "latency (cycles)"
    );
    let _ = writeln!(out, "{}", "-".repeat(44));

    let quick = ctx.quick;
    let sim_points = par_map(ctx.jobs, &SIM_GRID, |_, &(dp, hw, wire)| {
        let mut cfg = crate::scenarios::sweep_for("ablation_pipelining", quick);
        cfg.sim.pipestages = dp;
        cfg.sim.header_words = hw;
        cfg.sim.wire_delay = wire;
        unloaded_latency(&cfg)
    });
    let mut rows = Vec::new();
    for (&(dp, hw, wire), &lat) in SIM_GRID.iter().zip(&sim_points) {
        let _ = writeln!(out, "{dp:>6} {hw:>6} {wire:>11} {lat:>16}");
        rows.push(Json::obj([
            ("pipestages", Json::from(dp)),
            ("header_words", Json::from(hw)),
            ("wire_delay", Json::from(wire)),
            ("unloaded_latency_cycles", Json::from(lat)),
        ]));
    }

    let _ = writeln!(
        out,
        "\nanalytic projection (Table 4, 0.8µ full custom, 32-node network):"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>6} {:>9} {:>9} {:>12}",
        "dp", "hw", "t_clk", "t_stg", "t_20,32 (ns)"
    );
    let _ = writeln!(out, "{}", "-".repeat(46));
    let mut analytic = Vec::new();
    for (dp, hw, t_clk) in [(1, 0, 5.0), (2, 0, 2.0), (1, 1, 2.0), (1, 2, 2.0)] {
        let m = LatencyModel {
            t_clk_ns: t_clk,
            t_io_ns: 3.0,
            t_wire_ns: T_WIRE_NS,
            width: 4,
            cascade: 1,
            pipestages: dp,
            header_words: hw,
            stage_digit_bits: stages_32_node_4stage(),
        };
        let _ = writeln!(
            out,
            "{dp:>6} {hw:>6} {:>9} {:>9} {:>12}",
            t_clk,
            m.t_stg_ns(),
            m.t20_32_ns()
        );
        analytic.push(Json::obj([
            ("pipestages", Json::from(dp)),
            ("header_words", Json::from(hw)),
            ("t_clk_ns", Json::from(t_clk)),
            ("t_stg_ns", Json::from(m.t_stg_ns())),
            ("t20_32_ns", Json::from(m.t20_32_ns())),
        ]));
    }
    let _ = writeln!(
        out,
        "\nreading: deeper pipelines cost cycles but buy clock rate; pipelined"
    );
    let _ = writeln!(
        out,
        "connection setup (hw > 0) trades header words for a shorter critical"
    );
    let _ = writeln!(
        out,
        "path — the 124 ns (dp=2) vs 120 ns (hw=1) comparison of Table 3."
    );

    let points = rows.len() + analytic.len();
    let json = Json::obj([
        ("artifact", Json::from("ablation_pipelining")),
        ("simulated", Json::Arr(rows)),
        ("analytic", Json::Arr(analytic)),
    ]);
    // The serial-setup Table 4 cell as a scripted scenario (the
    // `table4_hw0` corpus entry).
    let scenario = crate::scenarios::named("table4_hw0").expect("catalog entry");
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("sim_grid", Json::from(SIM_GRID.len()))]),
        scenario: Some(crate::scenarios::emit(&scenario)),
        telemetry: None,
    })
}
