//! Cross-validation of Table 3's cascade rows in *simulation*: a
//! `c`-wide cascade moves `w·c` bits per clock with the header
//! replicated on every slice, so its cycle count equals a single-slice
//! network carrying `ceil(payload/c)` words. The simulated unloaded
//! cycle counts are compared against the Table 4 cycle model.

use metro_harness::{par_map, Artifact, ArtifactOutput, Json, RunCtx};
use metro_sim::experiment::unloaded_latency;
use metro_timing::equations::{stages_32_node_4stage, LatencyModel, T_WIRE_NS};
use metro_topo::multibutterfly::MultibutterflySpec;
use std::fmt::Write as _;

const WIDTHS: [usize; 3] = [1, 2, 4];

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "cascade_sim",
        description: "cascade width: simulated cycles vs the Table 4 model",
        quick_profile: "identical to full (unloaded probes are already fast)",
        full_profile: "cascade widths 1/2/4 on the 32-node network, 20-byte messages",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Cascade width: simulated cycles vs the analytic model ===\n"
    );
    let _ = writeln!(
        out,
        "32-node Figure-1-style network, 20-byte messages, METROJR-class routers\n"
    );
    let _ = writeln!(
        out,
        "{:>3} {:>14} {:>18} {:>22}",
        "c", "payload words", "simulated cycles", "t_20,32 @ 25 ns (ns)"
    );
    let _ = writeln!(out, "{}", "-".repeat(62));

    let quick = ctx.quick;
    let results = par_map(ctx.jobs, &WIDTHS, |_, &c| {
        // Equivalent-payload reduction: 20 bytes over a w·c-bit logical
        // channel (w = 8 in simulation → 20 words at c = 1).
        let payload_words = 20usize.div_ceil(c);
        let mut cfg = crate::scenarios::sweep_for("cascade_sim", quick);
        cfg.spec = MultibutterflySpec::paper32();
        cfg.payload_words = payload_words.saturating_sub(1); // + checksum word
        let cycles = unloaded_latency(&cfg);
        let model = LatencyModel {
            t_clk_ns: 25.0,
            t_io_ns: 10.0,
            t_wire_ns: T_WIRE_NS,
            width: 4,
            cascade: c,
            pipestages: 1,
            header_words: 0,
            stage_digit_bits: stages_32_node_4stage(),
        };
        (c, payload_words, cycles, model.t20_32_ns())
    });

    let mut rows = Vec::new();
    for (c, payload_words, cycles, model_ns) in &results {
        let _ = writeln!(
            out,
            "{c:>3} {payload_words:>14} {cycles:>18} {model_ns:>22}"
        );
        rows.push(Json::obj([
            ("cascade", Json::from(*c)),
            ("payload_words", Json::from(*payload_words)),
            ("simulated_cycles", Json::from(*cycles)),
            ("model_t20_32_ns", Json::from(*model_ns)),
        ]));
    }
    let _ = writeln!(
        out,
        "\nreading: doubling the cascade roughly halves the serialization cycles"
    );
    let _ = writeln!(
        out,
        "while the per-stage cycles are fixed — the same diminishing-returns"
    );
    let _ = writeln!(
        out,
        "shape as Table 3's 1250 -> 750 -> 500 ns ORBIT column."
    );

    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("cascade_sim")),
        ("topology", Json::from("paper32")),
        ("message_bytes", Json::from(20u64)),
        ("points", Json::Arr(rows)),
    ]);
    // The width-4 cell as a scripted scenario (the `cascade_w4` corpus
    // entry).
    let scenario = crate::scenarios::named("cascade_w4").expect("catalog entry");
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("widths", Json::from(WIDTHS.len()))]),
        scenario: Some(crate::scenarios::emit(&scenario)),
        telemetry: None,
    })
}
