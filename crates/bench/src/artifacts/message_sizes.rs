//! Message-size sweep over the Table 3 implementation catalog: where
//! the `t_20,32` snapshot sits in the broader design space, and where
//! implementations cross over (§8: "tradeoffs … between latency,
//! throughput, i/o pins, and cost").

use metro_harness::{Artifact, ArtifactOutput, Json, RunCtx};
use metro_timing::catalog::table3;
use metro_timing::sweeps::{crossover_bytes, message_size_sweep_jobs, serialization_fraction};
use std::fmt::Write as _;

const SIZES: [usize; 5] = [4, 8, 20, 64, 256];
const PICKS: [usize; 6] = [0, 2, 4, 8, 11, 15];

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "message_sizes",
        description: "latency vs message size across the Table 3 catalog",
        quick_profile: "identical to full (closed-form model)",
        full_profile: "6 implementations × 5 message sizes, crossover search to 4 KiB",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let mut out = String::new();
    let _ = writeln!(out, "=== Delivery latency vs message size (ns) ===\n");
    let rows = table3();
    let _ = write!(out, "{:<36}", "implementation");
    for s in SIZES {
        let _ = write!(out, "{s:>9} B");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(36 + SIZES.len() * 10));

    let mut json_rows = Vec::new();
    for &k in &PICKS {
        let r = &rows[k];
        let _ = write!(out, "{:<36}", format!("{} [{}]", r.name, r.technology));
        let sweep = message_size_sweep_jobs(&r.model(), &SIZES, ctx.jobs);
        let mut latencies = Vec::new();
        for (bytes, ns) in &sweep {
            let _ = write!(out, "{ns:>10.0}");
            latencies.push(Json::obj([
                ("bytes", Json::from(*bytes)),
                ("latency_ns", Json::from(*ns)),
            ]));
        }
        let _ = writeln!(out);
        json_rows.push(Json::obj([
            ("name", Json::from(r.name)),
            ("technology", Json::from(r.technology)),
            ("latencies", Json::Arr(latencies)),
        ]));
    }

    let _ = writeln!(
        out,
        "\ncrossovers (message size where the wide/slow option starts winning):"
    );
    let wide_slow = rows[2].model(); // ORBIT 4-cascade
    let narrow_fast = rows[4].model(); // std-cell METROJR
    let crossover = crossover_bytes(&wide_slow, &narrow_fast, 4096);
    match crossover {
        Some(b) => {
            let _ = writeln!(
                out,
                "  ORBIT 4-cascade overtakes std-cell METROJR at {b} bytes (Table 3's\n  20-byte figure of merit sits exactly on this crossover: both 500 ns)"
            );
        }
        None => {
            let _ = writeln!(out, "  no crossover within 4 KiB");
        }
    }

    let _ = writeln!(
        out,
        "\nserialization fraction of t_20,32 (short-haul regime check, §2):"
    );
    let mut fractions = Vec::new();
    for (name, frac) in serialization_fraction(&rows) {
        if frac > 0.0 {
            let _ = writeln!(out, "  {name:<44} {:>5.1}%", frac * 100.0);
        }
        fractions.push(Json::obj([
            ("name", Json::from(name.as_str())),
            ("serialization_fraction", Json::from(frac)),
        ]));
    }

    let points = json_rows.len() * SIZES.len();
    let json = Json::obj([
        ("artifact", Json::from("message_sizes")),
        (
            "sizes_bytes",
            Json::Arr(SIZES.iter().map(|&s| Json::from(s)).collect()),
        ),
        ("crossover_bytes", crossover.map_or(Json::Null, Json::from)),
        ("points", Json::Arr(json_rows)),
        ("serialization_fractions", Json::Arr(fractions)),
    ]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([
            ("implementations", Json::from(PICKS.len())),
            ("sizes", Json::from(SIZES.len())),
        ]),
        scenario: None,
        telemetry: None,
    })
}
