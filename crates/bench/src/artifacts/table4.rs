//! Regenerates Table 4: the latency equations, worked through for the
//! METROJR-ORBIT prototype so every intermediate quantity is visible.

use metro_harness::{Artifact, ArtifactOutput, Json, RunCtx};
use metro_timing::equations::{stages_32_node_4stage, LatencyModel, MESSAGE_BITS, T_WIRE_NS};
use std::fmt::Write as _;

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "table4",
        description: "Table 4: latency equations worked for METROJR-ORBIT",
        quick_profile: "identical to full (closed-form model)",
        full_profile: "hw = 0 worked example plus hw = 1 full-custom variant",
        run,
    }
}

fn model_json(label: &str, m: &LatencyModel) -> Json {
    Json::obj([
        ("variant", Json::from(label)),
        ("t_clk_ns", Json::from(m.t_clk_ns)),
        ("t_io_ns", Json::from(m.t_io_ns)),
        ("vtd_cycles", Json::from(m.vtd())),
        ("t_on_chip_ns", Json::from(m.t_on_chip_ns())),
        ("t_stg_ns", Json::from(m.t_stg_ns())),
        ("header_bits", Json::from(m.header_bits())),
        ("t_bit_ns", Json::from(m.t_bit_ns())),
        ("t20_32_ns", Json::from(m.t20_32_ns())),
    ])
}

fn run(_ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Table 4: latency equations (worked example: METROJR-ORBIT) ===\n"
    );
    let m = LatencyModel {
        t_clk_ns: 25.0,
        t_io_ns: 10.0,
        t_wire_ns: T_WIRE_NS,
        width: 4,
        cascade: 1,
        pipestages: 1,
        header_words: 0,
        stage_digit_bits: stages_32_node_4stage(),
    };
    let _ = writeln!(
        out,
        "t_wire     = {} ns                      (assumed wire delay)",
        m.t_wire_ns
    );
    let _ = writeln!(
        out,
        "vtd        = ceil((t_io + t_wire)/t_clk) = ceil(({} + {})/{}) = {} cycles",
        m.t_io_ns,
        m.t_wire_ns,
        m.t_clk_ns,
        m.vtd()
    );
    let _ = writeln!(
        out,
        "t_on_chip  = t_clk * dp = {} * {} = {} ns",
        m.t_clk_ns,
        m.pipestages,
        m.t_on_chip_ns()
    );
    let _ = writeln!(
        out,
        "t_stg      = t_on_chip + vtd*t_clk = {} + {}*{} = {} ns",
        m.t_on_chip_ns(),
        m.vtd(),
        m.t_clk_ns,
        m.t_stg_ns()
    );
    let digit_sum: usize = m.stage_digit_bits.iter().sum();
    let _ = writeln!(
        out,
        "hbits      = ceil((sum log2 r_s)/w)*w*c = ceil({digit_sum}/{})*{}*{} = {} bits  (hw = 0)",
        m.width,
        m.width,
        m.cascade,
        m.header_bits()
    );
    let _ = writeln!(
        out,
        "t_bit      = t_clk/(w*c) = {}/{} = {} ns/bit",
        m.t_clk_ns,
        m.width * m.cascade,
        m.t_bit_ns()
    );
    let _ = writeln!(
        out,
        "t_20,32    = stages*t_stg + (20*8 + hbits)*t_bit = {}*{} + ({} + {})*{} = {} ns",
        m.stages(),
        m.t_stg_ns(),
        MESSAGE_BITS,
        m.header_bits(),
        m.t_bit_ns(),
        m.t20_32_ns()
    );

    let _ = writeln!(
        out,
        "\nand with pipelined connection setup (hw = 1, 2 ns full-custom clock):"
    );
    let hw1 = LatencyModel {
        t_clk_ns: 2.0,
        t_io_ns: 3.0,
        header_words: 1,
        ..m.clone()
    };
    let _ = writeln!(
        out,
        "vtd = {}, t_stg = {} ns, hbits = hw*w*c*stages = {} bits, t_20,32 = {} ns",
        hw1.vtd(),
        hw1.t_stg_ns(),
        hw1.header_bits(),
        hw1.t20_32_ns()
    );

    let rows = vec![
        model_json("metrojr_orbit_hw0", &m),
        model_json("full_custom_hw1", &hw1),
    ];
    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("table4")),
        ("message_bits", Json::from(MESSAGE_BITS)),
        ("points", Json::Arr(rows)),
    ]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("variants", Json::from(2u64))]),
        scenario: None,
        telemetry: None,
    })
}
