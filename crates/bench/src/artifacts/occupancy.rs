//! Router occupancy analysis: how evenly the stochastic selection
//! spreads connections over the fabric, under uniform and hotspot
//! traffic — §4's "random selection … frees the source from knowing the
//! actual details of the redundant paths", made visible.

use metro_harness::{par_map, Artifact, ArtifactOutput, Json, RunCtx};
use metro_sim::traffic::TrafficPattern;
use metro_sim::workload::{ArrivalProcess, RateMap, StreamRecipe, StreamSeeds};
use metro_sim::{NetworkSim, SimConfig};
use metro_topo::multibutterfly::MultibutterflySpec;
use std::fmt::Write as _;

fn simulate(pattern: &TrafficPattern, cycles: u64) -> NetworkSim {
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure3(), &SimConfig::default())
        .expect("figure 3 spec is valid");
    let n = sim.topology().endpoints();
    let stream_words = sim.stream_for(0, &[0; 19]).len();
    let recipe = StreamRecipe {
        arrival: &ArrivalProcess::Bernoulli,
        rates: &RateMap::Uniform,
        pattern,
        load: 0.3,
        stream_words,
        payload_words: 19,
        endpoints: n,
        // Historical seeds for this bench, predating StreamSeeds::load:
        // a raw (un-salted) pattern seed and consecutive stream seeds.
        seeds: StreamSeeds {
            pattern_seed: 0xACC,
            stream_base: 0x0CC,
            stream_stride: 1,
        },
    };
    let mut driver = recipe.driver();
    let payload: Vec<u16> = (0..19).map(|k| k as u16).collect();
    for cycle in 0..cycles {
        driver.poll(cycle, |a| {
            sim.send(a.src, a.dest, &payload);
        });
        sim.tick();
    }
    sim
}

fn report(out: &mut String, rows: &mut Vec<Json>, label: &str, sim: &NetworkSim) {
    let _ = writeln!(out, "{label}:");
    for s in 0..sim.topology().stages() {
        let grants: Vec<u64> = (0..sim.topology().routers_in_stage(s))
            .map(|r| sim.router(s, r).stats().grants)
            .collect();
        let total: u64 = grants.iter().sum();
        let min = grants.iter().min().copied().unwrap_or(0);
        let max = grants.iter().max().copied().unwrap_or(0);
        let mean = total as f64 / grants.len() as f64;
        let blocks: u64 = (0..grants.len())
            .map(|r| sim.router(s, r).stats().blocks)
            .sum();
        let imbalance = if min > 0 {
            max as f64 / min as f64
        } else {
            f64::INFINITY
        };
        let _ = writeln!(
            out,
            "  stage {s}: grants/router min {min:>5} mean {mean:>8.1} max {max:>5}  (imbalance {imbalance:.2}x, {blocks} blocks)",
        );
        rows.push(Json::obj([
            ("workload", Json::from(label)),
            ("stage", Json::from(s)),
            ("grants_min", Json::from(min)),
            ("grants_mean", Json::from(mean)),
            ("grants_max", Json::from(max)),
            // Infinite imbalance (a starved router) renders as null.
            ("imbalance", Json::from(imbalance)),
            ("blocks", Json::from(blocks)),
        ]));
    }
    let _ = writeln!(out);
}

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "occupancy",
        description: "per-router load balance, uniform vs hotspot traffic",
        quick_profile: "2 workloads × 3k cycles at load 0.3",
        full_profile: "2 workloads × 8k cycles at load 0.3",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let cycles = if ctx.quick { 3_000 } else { 8_000 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Router occupancy under load 0.3, {cycles} cycles ===\n"
    );

    let workloads: [(&str, TrafficPattern); 2] = [
        ("uniform random traffic", TrafficPattern::Uniform),
        (
            "30% hotspot on endpoint 0",
            TrafficPattern::Hotspot {
                target: 0,
                percent: 30,
            },
        ),
    ];
    let mut sims = par_map(ctx.jobs, &workloads, |_, (_, pattern)| {
        simulate(pattern, cycles)
    });

    let mut rows = Vec::new();
    for ((label, _), sim) in workloads.iter().zip(&sims) {
        report(&mut out, &mut rows, label, sim);
    }
    // Telemetry sidecar: the uniform-traffic fabric.
    let snap = sims[0].telemetry_snapshot("occupancy");

    let _ = writeln!(
        out,
        "reading: under uniform traffic the stochastic selection keeps the"
    );
    let _ = writeln!(
        out,
        "grant imbalance within ~1.5x at every stage with zero coordination."
    );
    let _ = writeln!(
        out,
        "The hotspot leaves stage 0 balanced (retries spread over all entry"
    );
    let _ = writeln!(
        out,
        "paths) but skews the later stages by an order of magnitude: the"
    );
    let _ = writeln!(
        out,
        "victim's destination subtree — rooted where the groups first"
    );
    let _ = writeln!(
        out,
        "single out endpoint 0 — absorbs the whole concentration, and the"
    );
    let _ = writeln!(
        out,
        "blocks pile up at stage 0 where circuits fail to form."
    );

    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("occupancy")),
        ("topology", Json::from("figure3")),
        ("cycles", Json::from(cycles)),
        ("load", Json::from(0.3)),
        ("points", Json::Arr(rows)),
    ]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("cycles", Json::from(cycles))]),
        scenario: None,
        telemetry: Some(snap.to_json()),
    })
}
