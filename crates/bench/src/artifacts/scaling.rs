//! Scaling study: unloaded latency and saturation throughput as the
//! network grows from 16 to 256 endpoints, holding the router
//! technology fixed — the "logarithmic number of routing components"
//! claim of §2 made quantitative.

use metro_harness::{par_map, Artifact, ArtifactOutput, Json, RunCtx};
use metro_sim::experiment::{run_load_point, unloaded_latency};
use metro_topo::multibutterfly::{Multibutterfly, MultibutterflySpec, StageSpec, WiringStyle};
use std::fmt::Write as _;

/// A 256-endpoint, 4-stage radix-4 network from the same parts as
/// Figure 3 (dilation 2/2/2/1).
fn net256() -> MultibutterflySpec {
    MultibutterflySpec {
        endpoints: 256,
        endpoint_ports: 2,
        stages: vec![
            StageSpec::new(8, 8, 2),
            StageSpec::new(8, 8, 2),
            StageSpec::new(8, 8, 2),
            StageSpec::new(4, 4, 1),
        ],
        wiring: WiringStyle::Randomized,
        seed: 0x256,
    }
}

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "scaling",
        description: "16 → 256 endpoints at fixed router technology",
        quick_profile: "4 network sizes, 2.5k measured cycles each",
        full_profile: "4 network sizes, full Figure 3 windows below 256 endpoints",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let sizes: [(MultibutterflySpec, usize); 4] = [
        (MultibutterflySpec::figure1(), 16),
        (MultibutterflySpec::paper32(), 32),
        (MultibutterflySpec::figure3(), 64),
        (net256(), 256),
    ];
    let quick = ctx.quick;
    let results = par_map(ctx.jobs, &sizes, |_, (spec, label)| {
        let net = Multibutterfly::build(spec).expect("valid spec");
        // The 256-endpoint network always runs the quick windows; the
        // catalog keeps quick and full on one construction path.
        let mut cfg = crate::scenarios::sweep_for("scaling", quick || *label >= 256);
        cfg.spec = spec.clone();
        let base = unloaded_latency(&cfg);
        let p = run_load_point(&cfg, 0.4);
        (*label, net.stages(), net.total_routers(), base, p)
    });

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Scaling: 16 -> 256 endpoints, fixed router technology ===\n"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>7} {:>8} {:>10} {:>12} {:>14}",
        "endpoints", "stages", "routers", "unloaded", "mean @ 0.4", "retries @ 0.4"
    );
    let _ = writeln!(out, "{}", "-".repeat(68));
    let mut rows = Vec::new();
    for (label, stages, routers, base, p) in &results {
        let _ = writeln!(
            out,
            "{:>10} {:>7} {:>8} {:>10} {:>12.1} {:>14.3}",
            label, stages, routers, base, p.mean_latency, p.retries_per_message
        );
        rows.push(Json::obj([
            ("endpoints", Json::from(*label)),
            ("stages", Json::from(*stages)),
            ("routers", Json::from(*routers)),
            ("unloaded_latency_cycles", Json::from(*base)),
            ("mean_latency_at_0_4", Json::from(p.mean_latency)),
            (
                "retries_per_message_at_0_4",
                Json::from(p.retries_per_message),
            ),
            ("delivered", Json::from(p.delivered)),
        ]));
    }
    let _ = writeln!(
        out,
        "\nreading: unloaded latency grows by ~1 cycle per extra stage plus the"
    );
    let _ = writeln!(
        out,
        "longer headers — logarithmic in machine size, as circuit-switched"
    );
    let _ = writeln!(
        out,
        "multistage routing promises; router count grows as N·log(N)/radix."
    );

    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("scaling")),
        ("load", Json::from(0.4)),
        ("points", Json::Arr(rows)),
    ]);
    let scenario = crate::scenarios::load_scenario(
        "scaling",
        &crate::scenarios::sweep_for("scaling", quick),
        0.4,
    );
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("sizes", Json::from(4u64)), ("quick", Json::from(quick))]),
        scenario: Some(crate::scenarios::emit(&scenario)),
        telemetry: None,
    })
}
