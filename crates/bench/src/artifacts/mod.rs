//! The 23 paper artifacts, as registry entries.
//!
//! Each module moves one historical binary's logic behind a
//! [`metro_harness::Artifact`]: the run function builds the human
//! report into a string, returns the machine-readable JSON document,
//! and reports its point count and parameters for the results
//! manifest. The binaries in `src/bin/` are thin shims over these
//! entries; the `metro` binary fronts them all.
//!
//! Simulation artifacts honour `RunCtx::quick` by shortening their
//! measurement windows (the same `--quick` the binaries always had)
//! and `RunCtx::jobs` by running independent sweep points on the
//! shared worker pool ([`metro_harness::par_map`]). Both profiles of a
//! sweep come from one construction path ([`crate::scenarios`]), and
//! sim-backed artifacts emit the declarative [`Scenario`] describing
//! their configuration for the `results/<name>.scenario.json` sidecar
//! and the manifest's `scenario_hash`.
//!
//! [`Scenario`]: metro_sim::Scenario

use metro_harness::Registry;

pub mod ablation_concurrency;
pub mod ablation_dilation;
pub mod ablation_pipelining;
pub mod ablation_reclaim;
pub mod ablation_selection;
pub mod cascade_sim;
pub mod chaos;
pub mod estimate_bench;
pub mod fattree_budget;
pub mod fault_sweep;
pub mod fig1;
pub mod fig3;
pub mod message_sizes;
pub mod occupancy;
pub mod scaling;
pub mod shard_bench;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod tick_bench;
pub mod traffic_patterns;
pub mod workload_bench;

/// Builds the registry of every paper artifact, in the order the
/// paper presents them (figures, tables, robustness, ablations,
/// workload/scale studies, engine benchmark).
#[must_use]
pub fn registry() -> Registry {
    let mut r = Registry::new();
    r.register(fig1::artifact());
    r.register(fig3::artifact());
    r.register(table2::artifact());
    r.register(table3::artifact());
    r.register(table4::artifact());
    r.register(table5::artifact());
    r.register(fault_sweep::artifact());
    r.register(chaos::artifact());
    r.register(ablation_selection::artifact());
    r.register(ablation_reclaim::artifact());
    r.register(ablation_dilation::artifact());
    r.register(ablation_pipelining::artifact());
    r.register(ablation_concurrency::artifact());
    r.register(traffic_patterns::artifact());
    r.register(scaling::artifact());
    r.register(cascade_sim::artifact());
    r.register(occupancy::artifact());
    r.register(fattree_budget::artifact());
    r.register(message_sizes::artifact());
    r.register(tick_bench::artifact());
    r.register(shard_bench::artifact());
    r.register(workload_bench::artifact());
    r.register(estimate_bench::artifact());
    r
}
