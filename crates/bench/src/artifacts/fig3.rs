//! Figure 3: effective latency versus network loading for randomly
//! distributed 20-byte message traffic on the 3-stage, 64-endpoint,
//! radix-4 network (dilation 2/2/1, two network ports per endpoint,
//! parallelism-limited processors).

use crate::{
    ascii_curve, load_points_csv, load_points_json, render_load_points, write_result_csv_in,
};
use metro_harness::{Artifact, ArtifactOutput, Json, RunCtx};
use metro_sim::experiment::{
    load_sweep_jobs, point_seed, run_load_point_with_telemetry, unloaded_latency, SweepConfig,
};
use std::fmt::Write as _;

/// The sweep's offered-load grid.
pub const LOADS: [f64; 16] = [
    0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.80, 0.90,
];

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "fig3",
        description: "Figure 3 — latency vs load, 64-endpoint 3-stage radix-4 network",
        quick_profile: "16 load points, 500 warmup / 3k measured / 1k drain cycles",
        full_profile: "16 load points, 2k warmup / 12k measured / 3k drain cycles",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let cfg = crate::scenarios::sweep_for("fig3", ctx.quick);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Figure 3: aggregate latency vs network loading ===\n"
    );
    let _ = writeln!(
        out,
        "network: 64 endpoints, 3 stages of radix-4 routers (8-bit wide),"
    );
    let _ = writeln!(out, "         dilation 2 / 2 / 1, two ports per endpoint");
    let _ = writeln!(
        out,
        "traffic: uniformly random destinations, 20-byte messages"
    );
    let _ = writeln!(
        out,
        "model:   parallelism-limited (processors stall on outstanding message)\n"
    );

    let base = unloaded_latency(&cfg);
    let _ = writeln!(
        out,
        "unloaded message latency: {base} cycles (paper: 28 cycles, injection to ack receipt)\n"
    );

    let points = load_sweep_jobs(&cfg, &LOADS, ctx.jobs);
    out.push_str(&render_load_points(&points));

    let csv_path = write_result_csv_in(
        &ctx.results,
        "fig3_load_latency.csv",
        &load_points_csv(&points),
    )
    .map_err(|e| e.to_string())?;
    let _ = writeln!(out, "\nwrote {}", csv_path.display());

    let _ = writeln!(out, "\nmean latency vs offered load:");
    out.push_str(&ascii_curve(&points, 12));

    let low = &points[0];
    let last = points.last().expect("non-empty sweep");
    let sat = points.iter().map(|p| p.accepted).fold(f64::MIN, f64::max);
    let _ = writeln!(out, "\nshape summary:");
    let _ = writeln!(
        out,
        "  low-load latency {:.1} cycles ({:.2}x unloaded)",
        low.mean_latency,
        low.mean_latency / base as f64
    );
    let _ = writeln!(
        out,
        "  saturation throughput ~{sat:.2} of injection capacity"
    );
    let _ = writeln!(
        out,
        "  latency at highest load {:.0} cycles ({:.1}x unloaded) — the congestion knee",
        last.mean_latency,
        last.mean_latency / base as f64
    );

    let json = Json::obj([
        ("artifact", Json::from("fig3")),
        ("topology", Json::from("figure3")),
        ("endpoints", Json::from(64u64)),
        ("payload_words", Json::from(cfg.payload_words)),
        ("warmup_cycles", Json::from(cfg.warmup)),
        ("measured_cycles", Json::from(cfg.measure)),
        ("drain_cycles", Json::from(cfg.drain)),
        ("seed", Json::from(cfg.seed)),
        ("unloaded_latency_cycles", Json::from(base)),
        ("paper_unloaded_latency_cycles", Json::from(28u64)),
        ("saturation_throughput", Json::from(sat)),
        ("points", load_points_json(&points)),
    ]);
    let params = Json::obj([
        ("measure", Json::from(cfg.measure)),
        ("seed", Json::from(cfg.seed)),
        ("loads", Json::from(LOADS.len())),
    ]);
    // The declarative scenario for the curve's 0.40-load cell;
    // `metro scenario run` on the dumped sidecar reproduces that point
    // bit for bit. The sweep seeds each cell as point_seed(seed, index),
    // so the scenario carries the derived seed, not the base.
    let cell = 7;
    let mut scenario = crate::scenarios::load_scenario("fig3", &cfg, LOADS[cell]);
    scenario.seed = point_seed(cfg.seed, cell as u64);
    // Telemetry sidecar: re-run the same representative cell with its
    // sweep seed and freeze the registry into a snapshot.
    let cell_cfg = SweepConfig {
        seed: point_seed(cfg.seed, cell as u64),
        ..cfg.clone()
    };
    let (_, snap) = run_load_point_with_telemetry(&cell_cfg, LOADS[cell], "fig3");
    Ok(ArtifactOutput {
        human: out,
        json,
        points: points.len(),
        params,
        scenario: Some(crate::scenarios::emit(&scenario)),
        telemetry: Some(snap.to_json()),
    })
}
