//! Workload-subsystem throughput: the Flat engine's cycles per
//! wall-clock second under the driver-generated arrival streams, at one
//! matched mean offered load.
//!
//! Two cells: uniform Bernoulli arrivals (the Figure 3 baseline) versus
//! a bursty on/off hotspot (the adversarial end of the workload
//! catalog). Both offer the same long-run load, so the delta isolates
//! what traffic *shape* — not volume — costs the simulator: a hotspot
//! piles retries and blocked circuits into the victim's subtree, and
//! burstiness clumps the arrivals the driver must replay. Full runs
//! refresh the repo-root `BENCH_workload.json` trajectory file for the
//! perf guard.

use metro_harness::{Artifact, ArtifactOutput, Json, ResultsDir, RunCtx};
use metro_sim::traffic::TrafficPattern;
use metro_sim::workload::{ArrivalProcess, RateMap, StreamRecipe, StreamSeeds};
use metro_sim::{NetworkSim, SimConfig};
use metro_topo::multibutterfly::MultibutterflySpec;
use std::fmt::Write as _;
use std::time::Instant;

/// Matched mean offered load for both cells.
const LOAD: f64 = 0.2;
/// Offered payload per message, in words (the paper's 20-byte message).
const PAYLOAD_WORDS: usize = 19;
/// Stream seed base for the timed runs.
const SEED: u64 = 0xB41C;

struct Cell {
    label: &'static str,
    pattern: TrafficPattern,
    arrival: ArrivalProcess,
}

fn cells() -> [Cell; 2] {
    [
        Cell {
            label: "uniform bernoulli",
            pattern: TrafficPattern::Uniform,
            arrival: ArrivalProcess::Bernoulli,
        },
        Cell {
            label: "15% hotspot, on/off",
            pattern: TrafficPattern::Hotspot {
                target: 0,
                percent: 15,
            },
            arrival: ArrivalProcess::OnOff {
                burst_mean: 60,
                idle_mean: 120,
            },
        },
    ]
}

fn measure(cell: &Cell, warmup: u64, measured: u64) -> (f64, usize, NetworkSim) {
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure3(), &SimConfig::default())
        .expect("figure 3 spec is valid");
    let n = sim.topology().endpoints();
    let stream_words = sim.stream_for(0, &[0; PAYLOAD_WORDS]).len();
    let recipe = StreamRecipe {
        arrival: &cell.arrival,
        rates: &RateMap::Uniform,
        pattern: &cell.pattern,
        load: LOAD,
        stream_words,
        payload_words: PAYLOAD_WORDS,
        endpoints: n,
        seeds: StreamSeeds::load(SEED),
    };
    let mut driver = recipe.driver();
    let payload: Vec<u16> = (0..PAYLOAD_WORDS as u16).collect();
    for cycle in 0..warmup {
        driver.poll(cycle, |a| {
            sim.send(a.src, a.dest, &payload);
        });
        sim.tick();
    }
    sim.drain_outcomes();
    let start = Instant::now();
    for cycle in warmup..warmup + measured {
        driver.poll(cycle, |a| {
            sim.send(a.src, a.dest, &payload);
        });
        sim.tick();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let delivered = sim.drain_outcomes().len();
    (measured as f64 / elapsed, delivered, sim)
}

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "workload_bench",
        description: "flat-engine throughput, uniform vs bursty hotspot at matched load (cycles/s)",
        quick_profile: "500 warm-up + 2k measured cycles (no BENCH_workload.json refresh)",
        full_profile: "1k warm-up + 8k measured cycles, refreshes BENCH_workload.json",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let (warmup, measured) = if ctx.quick {
        (500u64, 2_000u64)
    } else {
        (1_000, 8_000)
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Workload-driver throughput: figure 3 fabric, load {LOAD} ===\n"
    );
    let _ = writeln!(
        out,
        "warm-up {warmup} cycles, measured {measured} cycles, \
         {PAYLOAD_WORDS}-word messages\n"
    );

    // The runs are timed, so they go strictly sequentially — sharing
    // cores between two timed runs would corrupt both readings.
    let mut rows = Vec::new();
    let mut rates = Vec::new();
    let mut last_sim = None;
    for cell in &cells() {
        let (rate, done, sim) = measure(cell, warmup, measured);
        let _ = writeln!(
            out,
            "{:<22}: {rate:>12.0} cycles/s  ({done} messages completed)",
            cell.label
        );
        rows.push(Json::obj([
            ("workload", Json::from(cell.label)),
            ("burstiness", Json::from(cell.arrival.burstiness())),
            ("cycles_per_sec", Json::from(rate)),
            ("messages_completed", Json::from(done)),
        ]));
        rates.push(rate);
        last_sim = Some(sim);
    }

    let hotspot_cost = rates[0] / rates[1];
    let _ = writeln!(
        out,
        "\nuniform/hotspot rate ratio : {hotspot_cost:.2}x \
         (traffic shape, not volume — both cells offer load {LOAD})"
    );

    let json = Json::obj([
        ("benchmark", Json::from("workload_throughput")),
        ("topology", Json::from("figure3")),
        ("load", Json::from(LOAD)),
        ("warmup_cycles", Json::from(warmup)),
        ("measured_cycles", Json::from(measured)),
        ("payload_words", Json::from(PAYLOAD_WORDS)),
        ("cells", Json::Arr(rows)),
        ("hotspot_cost", Json::from(hotspot_cost)),
    ]);

    if !ctx.quick {
        // The trajectory file lives at the repo root (one benchmark, one
        // file) but goes through the same validated writer as results/.
        let root = ResultsDir::new(".");
        root.write_json("BENCH_workload", &json)
            .map_err(|e| e.to_string())?;
        let _ = writeln!(out, "\nwrote BENCH_workload.json");
    }

    let mut sim = last_sim.expect("both cells ran");
    Ok(ArtifactOutput {
        human: out,
        json,
        points: 2,
        params: Json::obj([
            ("warmup_cycles", Json::from(warmup)),
            ("measured_cycles", Json::from(measured)),
            ("load", Json::from(LOAD)),
        ]),
        scenario: None,
        telemetry: Some(sim.telemetry_snapshot("workload_bench").to_json()),
    })
}
