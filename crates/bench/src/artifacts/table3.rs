//! Regenerates Table 3: METRO implementation examples — `t_clk`,
//! `t_io`, `t_stg`, `t_bit`, stages, and the `t_20,32` figure of merit,
//! computed from the Table 4 equations and checked against the paper's
//! printed cells.

use metro_harness::{Artifact, ArtifactOutput, Json, RunCtx};
use metro_timing::catalog::table3;
use metro_timing::report::{render_table3, table3_json};
use std::fmt::Write as _;

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "table3",
        description: "Table 3: implementation examples vs the paper's cells",
        quick_profile: "identical to full (closed-form model)",
        full_profile: "all 16 catalog rows, exact-reproduction check",
        run,
    }
}

fn run(_ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let rows = table3();
    let mut out = String::new();
    let _ = writeln!(out, "=== Table 3: METRO implementation examples ===\n");
    let _ = write!(out, "{}", render_table3(&rows));

    let _ = writeln!(out, "\nreproduction check (computed vs paper):");
    let mut exact = 0usize;
    for r in &rows {
        let ok = (r.t20_32_ns() - r.expected_t20_32_ns).abs() < 1e-9
            && (r.t_stg_ns() - r.expected_t_stg_ns).abs() < 1e-9;
        if ok {
            exact += 1;
        }
        let _ = writeln!(
            out,
            "  {:<34} t_stg {:>5} ns (paper {:>5}) | t_20,32 {:>6} ns (paper {:>6}) {}",
            format!("{} [{}]", r.name, r.technology),
            r.t_stg_ns(),
            r.expected_t_stg_ns,
            r.t20_32_ns(),
            r.expected_t20_32_ns,
            if ok { "EXACT" } else { "MISMATCH" }
        );
    }
    let _ = writeln!(
        out,
        "\n{exact}/{} rows reproduce the paper exactly",
        rows.len()
    );
    if exact != rows.len() {
        return Err(format!(
            "only {exact}/{} Table 3 rows reproduce the paper",
            rows.len()
        ));
    }

    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("table3")),
        ("exact_rows", Json::from(exact)),
        ("points", table3_json(&rows)),
    ]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("rows", Json::from(points))]),
        scenario: None,
        telemetry: None,
    })
}
