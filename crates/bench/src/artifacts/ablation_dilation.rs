//! Ablation: the multipath (dilated) network of Figure 3 versus a
//! non-dilated network of the same parts, and deterministic versus
//! randomized wiring. Dilation is METRO's source of path redundancy
//! (§2): it should buy both congestion relief under load and survival
//! under router faults.

use metro_harness::{par_map, Artifact, ArtifactOutput, Json, RunCtx};
use metro_sim::experiment::{run_fault_point, run_load_point};
use metro_topo::multibutterfly::{MultibutterflySpec, StageSpec, WiringStyle};
use std::fmt::Write as _;

const LOADS: [f64; 2] = [0.2, 0.5];

/// A 64-endpoint network from the same 8x8 parts with dilation 1
/// everywhere: two stages of radix 8, no redundant paths inside the
/// network (only the two endpoint ports).
fn non_dilated() -> MultibutterflySpec {
    MultibutterflySpec {
        endpoints: 64,
        endpoint_ports: 2,
        stages: vec![StageSpec::new(8, 8, 1), StageSpec::new(8, 8, 1)],
        wiring: WiringStyle::Randomized,
        seed: 0x1994,
    }
}

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "ablation_dilation",
        description: "dilated multipath vs non-dilated network, and wiring styles",
        quick_profile: "3 variants × (2 loads + 1 fault point), 2.5k measured cycles",
        full_profile: "3 variants × (2 loads + 1 fault point), 6k measured cycles",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let base = crate::scenarios::sweep_for("ablation_dilation", ctx.quick);

    let variants: [(&str, MultibutterflySpec); 3] = [
        ("dilated 2/2/1 (paper)", MultibutterflySpec::figure3()),
        ("non-dilated radix-8 x2", non_dilated()),
        (
            "dilated, deterministic wiring",
            MultibutterflySpec::figure3().with_wiring(WiringStyle::Deterministic),
        ),
    ];
    let results = par_map(ctx.jobs, &variants, |_, (name, spec)| {
        let mut cfg = base.clone();
        cfg.spec = spec.clone();
        let loaded: Vec<_> = LOADS.iter().map(|&l| run_load_point(&cfg, l)).collect();
        let faulty = run_fault_point(&cfg, 0.3, 2, 0);
        (*name, loaded, faulty)
    });

    let mut out = String::new();
    let mut rows = Vec::new();
    let _ = writeln!(out, "=== Ablation: dilation and wiring style ===\n");
    for (name, loaded, faulty) in &results {
        let _ = writeln!(out, "{name}:");
        for (load, p) in LOADS.iter().zip(loaded) {
            let _ = writeln!(
                out,
                "  load {load:.1}: mean {:>7.1} cyc  p95 {:>6}  retries/msg {:>6.3}  delivered {}",
                p.mean_latency, p.p95_latency, p.retries_per_message, p.delivered
            );
            rows.push(Json::obj([
                ("variant", Json::from(*name)),
                ("load", Json::from(*load)),
                ("mean_latency", Json::from(p.mean_latency)),
                ("p95_latency", Json::from(p.p95_latency)),
                ("retries_per_message", Json::from(p.retries_per_message)),
                ("delivered", Json::from(p.delivered)),
            ]));
        }
        let _ = writeln!(
            out,
            "  2 dead routers @ load 0.3: mean {:>7.1} cyc  retries/msg {:>6.3}  delivered {}  lost {}\n",
            faulty.mean_latency, faulty.retries_per_message, faulty.delivered, faulty.abandoned
        );
        rows.push(Json::obj([
            ("variant", Json::from(*name)),
            ("dead_routers", Json::from(2u64)),
            ("load", Json::from(0.3)),
            ("mean_latency", Json::from(faulty.mean_latency)),
            (
                "retries_per_message",
                Json::from(faulty.retries_per_message),
            ),
            ("delivered", Json::from(faulty.delivered)),
            ("abandoned", Json::from(faulty.abandoned)),
        ]));
    }
    let _ = writeln!(
        out,
        "expected shape: the dilated network rides through contention and router"
    );
    let _ = writeln!(
        out,
        "loss with modest retry counts; the non-dilated network concentrates"
    );
    let _ = writeln!(out, "blocking on its unique internal paths.");

    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("ablation_dilation")),
        ("measured_cycles", Json::from(base.measure)),
        ("seed", Json::from(base.seed)),
        ("points", Json::Arr(rows)),
    ]);
    let scenario = crate::scenarios::load_scenario("ablation_dilation", &base, LOADS[1]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("measure", Json::from(base.measure))]),
        scenario: Some(crate::scenarios::emit(&scenario)),
        telemetry: None,
    })
}
