//! Tick-engine throughput: flat double-buffered arenas vs. the
//! reference nested-`Vec` engine on the fixed Figure 3 configuration
//! (64-endpoint three-stage multibutterfly, 8-bit channels, `dp = 1`,
//! fast reclamation).
//!
//! Both engines run the identical sustained workload — every endpoint
//! re-offers an 8-word message each time its queue drains, so the
//! fabric stays loaded for the whole measurement window. The measured
//! quantity is simulator cycles per wall-clock second. Full runs also
//! refresh the repo-root `BENCH_tick.json` trajectory file (quick runs
//! deliberately leave it alone so CI smoke runs don't clobber real
//! benchmark numbers with short-window noise).

use metro_harness::{Artifact, ArtifactOutput, Json, ResultsDir, RunCtx};
use metro_sim::{EngineKind, NetworkSim, SimConfig};
use metro_topo::multibutterfly::MultibutterflySpec;
use std::fmt::Write as _;
use std::time::Instant;

/// Offered payload per message, in words.
const PAYLOAD_WORDS: usize = 8;
/// Cycles between workload refresh sweeps.
const OFFER_PERIOD: u64 = 32;

fn build(kind: EngineKind) -> NetworkSim {
    let spec = MultibutterflySpec::figure3();
    let config = SimConfig {
        engine: kind,
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&spec, &config).expect("Figure 3 spec is valid");
    // Decimate trace snapshots identically for both engines so the
    // comparison isolates the tick engine itself.
    sim.set_trace_interval(1_024);
    sim
}

/// Keeps every endpoint's NIC queue non-empty: one fresh message per
/// endpoint every `OFFER_PERIOD` cycles, destinations striding through
/// the address space so the load spreads across the fabric.
fn offer_load(sim: &mut NetworkSim, round: u64) {
    let n = sim.topology().endpoints();
    let payload: Vec<u16> = (0..PAYLOAD_WORDS as u16).collect();
    for src in 0..n {
        let dest = (src + 1 + (round as usize * 7) % (n - 1)) % n;
        sim.send(src, dest, &payload);
    }
}

fn measure(kind: EngineKind, warmup: u64, measured: u64) -> (f64, usize, NetworkSim) {
    let mut sim = build(kind);
    let mut round = 0u64;
    for now in 0..warmup {
        if now % OFFER_PERIOD == 0 {
            offer_load(&mut sim, round);
            round += 1;
        }
        sim.tick();
    }
    sim.drain_outcomes();
    let start = Instant::now();
    for now in 0..measured {
        if now % OFFER_PERIOD == 0 {
            offer_load(&mut sim, round);
            round += 1;
        }
        sim.tick();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let delivered = sim.drain_outcomes().len();
    (measured as f64 / elapsed, delivered, sim)
}

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "tick_bench",
        description: "flat vs reference tick-engine throughput (cycles/s)",
        quick_profile: "2k warm-up + 10k measured cycles (no BENCH_tick.json refresh)",
        full_profile: "20k warm-up + 100k measured cycles, refreshes BENCH_tick.json",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let (warmup, measured) = if ctx.quick {
        (2_000u64, 10_000u64)
    } else {
        (20_000, 100_000)
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Tick-engine throughput: Figure 3 network (64 endpoints, 3 stages) ===\n"
    );
    let _ = writeln!(
        out,
        "warm-up {warmup} cycles, measured {measured} cycles, \
         {PAYLOAD_WORDS}-word messages re-offered every {OFFER_PERIOD} cycles\n"
    );

    // The two engine runs are timed, so they run sequentially even when
    // jobs > 1: sharing cores would corrupt both wall-clock readings.
    let (flat_rate, flat_done, mut flat_sim) = measure(EngineKind::Flat, warmup, measured);
    let _ = writeln!(
        out,
        "flat      : {flat_rate:>12.0} cycles/s  ({flat_done} messages completed)"
    );
    let (ref_rate, ref_done, _) = measure(EngineKind::Reference, warmup, measured);
    let _ = writeln!(
        out,
        "reference : {ref_rate:>12.0} cycles/s  ({ref_done} messages completed)"
    );

    let speedup = flat_rate / ref_rate;
    let _ = writeln!(out, "\nspeedup   : {speedup:.2}x");
    if flat_done != ref_done {
        return Err(format!(
            "engines completed different message counts under the identical \
             workload: flat {flat_done} vs reference {ref_done}"
        ));
    }

    let json = Json::obj([
        ("benchmark", Json::from("tick_engine_throughput")),
        ("topology", Json::from("figure3")),
        ("endpoints", Json::from(64u64)),
        ("warmup_cycles", Json::from(warmup)),
        ("measured_cycles", Json::from(measured)),
        ("payload_words", Json::from(PAYLOAD_WORDS)),
        ("offer_period", Json::from(OFFER_PERIOD)),
        ("flat_cycles_per_sec", Json::from(flat_rate)),
        ("reference_cycles_per_sec", Json::from(ref_rate)),
        ("messages_completed", Json::from(flat_done)),
        ("speedup", Json::from(speedup)),
    ]);

    if !ctx.quick {
        // The trajectory file lives at the repo root (one benchmark, one
        // file) but goes through the same validated writer as results/.
        let root = ResultsDir::new(".");
        root.write_json("BENCH_tick", &json)
            .map_err(|e| e.to_string())?;
        let _ = writeln!(out, "\nwrote BENCH_tick.json");
    }

    Ok(ArtifactOutput {
        human: out,
        json,
        points: 2,
        params: Json::obj([
            ("warmup_cycles", Json::from(warmup)),
            ("measured_cycles", Json::from(measured)),
        ]),
        scenario: None,
        telemetry: Some(flat_sim.telemetry_snapshot("tick_bench").to_json()),
    })
}
