//! The chaos-campaign artifact: randomized fault storms against the
//! self-healing loop (§5.1 port disabling + §5.3 live reconfiguration),
//! replayed on both tick engines, with every hard invariant enforced —
//! no silent loss or duplication, evidence-driven mask convergence, and
//! bounded latency recovery.

use metro_harness::{Artifact, ArtifactOutput, Json, RunCtx};
use metro_sim::chaos::{run_campaign_with_telemetry, ChaosCampaign, ChaosReport};
use metro_sim::network::EngineKind;
use metro_topo::multibutterfly::MultibutterflySpec;
use std::fmt::Write as _;

/// Base seed of the campaign sweep.
pub const BASE_SEED: u64 = 0x57A6;

/// Campaigns in the quick profile.
pub const QUICK_CAMPAIGNS: u64 = 4;

/// Campaigns in the full profile.
pub const FULL_CAMPAIGNS: u64 = 12;

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "chaos",
        description: "§5.1/§5.3 — fault-storm campaigns against the online self-healing loop",
        quick_profile: "4 randomized campaigns on Figure 1, Flat + Reference engines",
        full_profile: "12 randomized campaigns on Figure 1, Flat + Reference engines",
        run,
    }
}

fn kind_label(r: &ChaosReport) -> String {
    format!("{} link{}", r.events, if r.events == 1 { "" } else { "s" })
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let spec = MultibutterflySpec::figure1();
    let campaigns = if ctx.quick {
        QUICK_CAMPAIGNS
    } else {
        FULL_CAMPAIGNS
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Chaos campaigns (Figure 1 network, {campaigns} seeded storms, both engines) ===\n"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>7} {:>9} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "seed", "faults", "sends", "retries", "base(cyc)", "rec(cyc)", "cksum", "masks", "after"
    );
    let _ = writeln!(out, "{}", "-".repeat(84));

    let mut reports = Vec::new();
    let mut last_snapshot = None;
    for k in 0..campaigns {
        let seed = BASE_SEED.wrapping_add(k);
        let campaign = ChaosCampaign::generate(&spec, seed).map_err(|e| e.to_string())?;
        // Flat carries the report; Reference must agree bit for bit.
        let (flat, snap) = run_campaign_with_telemetry(&campaign, EngineKind::Flat)
            .map_err(|e| format!("seed {seed:#x} (flat): {e}"))?;
        let (reference, _) = run_campaign_with_telemetry(&campaign, EngineKind::Reference)
            .map_err(|e| format!("seed {seed:#x} (reference): {e}"))?;
        if flat.outcomes != reference.outcomes
            || flat.masked_links != reference.masked_links
            || flat.masked_injections != reference.masked_injections
        {
            return Err(format!(
                "seed {seed:#x}: Flat and Reference engines diverged under chaos"
            ));
        }
        let _ = writeln!(
            out,
            "{:>8} {:>8} {:>7} {:>9} {:>10} {:>10} {:>8} {:>8} {:>8}",
            format!("{seed:#x}"),
            kind_label(&flat),
            flat.sends,
            flat.total_retries,
            flat.baseline_worst,
            flat.recovery_worst,
            flat.checksum_mismatches,
            flat.masks_applied,
            flat.retries_after_mask,
        );
        last_snapshot = Some(snap);
        reports.push(flat);
    }

    let total_sends: usize = reports.iter().map(|r| r.sends).sum();
    let total_masks: u64 = reports.iter().map(|r| r.masks_applied).sum();
    let _ = writeln!(
        out,
        "\nall invariants held on both engines: {total_sends} probes, zero silent losses or\nduplicates; every injected fault was masked from reply evidence alone\n({total_masks} port masks applied), and post-masking latency recovered to baseline."
    );

    let json = Json::obj([
        ("artifact", Json::from("chaos")),
        ("topology", Json::from("figure1")),
        ("base_seed", Json::from(BASE_SEED)),
        ("campaigns", Json::from(campaigns)),
        ("engines", Json::from("flat+reference")),
        ("total_sends", Json::from(total_sends)),
        ("total_masks_applied", Json::from(total_masks)),
        (
            "reports",
            Json::arr(reports.iter().map(ChaosReport::to_json)),
        ),
    ]);
    let params = Json::obj([
        ("base_seed", Json::from(BASE_SEED)),
        ("campaigns", Json::from(campaigns)),
    ]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points: reports.len(),
        params,
        scenario: None,
        telemetry: last_snapshot.map(|s| s.to_json()),
    })
}
