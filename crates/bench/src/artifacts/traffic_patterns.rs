//! Traffic-pattern study: the Figure 3 network under the standard
//! multistage-network adversaries — uniform random (the paper's
//! workload), hotspot concentration, matrix transpose, and bit
//! reversal.

use metro_harness::{par_map, Artifact, ArtifactOutput, Json, RunCtx};
use metro_sim::experiment::run_load_point;
use metro_sim::TrafficPattern;
use std::fmt::Write as _;

const LOADS: [f64; 2] = [0.2, 0.4];

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "traffic_patterns",
        description: "uniform / hotspot / transpose / bit-reversal workloads",
        quick_profile: "4 patterns × 2 loads, 2.5k measured cycles",
        full_profile: "4 patterns × 2 loads, 6k measured cycles",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let cfg = crate::scenarios::sweep_for("traffic_patterns", ctx.quick);

    let patterns: [(&str, TrafficPattern); 4] = [
        ("uniform", TrafficPattern::Uniform),
        (
            "hotspot 20%",
            TrafficPattern::Hotspot {
                target: 0,
                percent: 20,
            },
        ),
        ("transpose", TrafficPattern::Transpose),
        ("bit-reversal", TrafficPattern::BitReversal),
    ];
    let combos: Vec<(usize, f64)> = (0..patterns.len())
        .flat_map(|k| LOADS.iter().map(move |&l| (k, l)))
        .collect();
    let results = par_map(ctx.jobs, &combos, |_, &(k, load)| {
        let mut cfg = cfg.clone();
        cfg.pattern = patterns[k].1.clone();
        run_load_point(&cfg, load)
    });

    let mut out = String::new();
    let _ = writeln!(out, "=== Traffic patterns on the Figure 3 network ===\n");
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>11} {:>8} {:>12} {:>10}",
        "pattern", "load", "mean(cyc)", "p95", "retries/msg", "delivered"
    );
    let _ = writeln!(out, "{}", "-".repeat(66));
    let mut rows = Vec::new();
    for ((k, load), p) in combos.iter().zip(&results) {
        let name = patterns[*k].0;
        let _ = writeln!(
            out,
            "{name:<14} {load:>6.1} {:>11.1} {:>8} {:>12.3} {:>10}",
            p.mean_latency, p.p95_latency, p.retries_per_message, p.delivered
        );
        rows.push(Json::obj([
            ("pattern", Json::from(name)),
            ("load", Json::from(*load)),
            ("mean_latency", Json::from(p.mean_latency)),
            ("p95_latency", Json::from(p.p95_latency)),
            ("retries_per_message", Json::from(p.retries_per_message)),
            ("delivered", Json::from(p.delivered)),
        ]));
    }
    let _ = writeln!(
        out,
        "\nreading: permutations (transpose, bit-reversal) beat even uniform"
    );
    let _ = writeln!(
        out,
        "traffic — each destination hears from exactly one source, so the only"
    );
    let _ = writeln!(
        out,
        "contention is inside the multipath fabric, which the dilation absorbs."
    );
    let _ = writeln!(
        out,
        "The hotspot serializes at the victim's delivery ports — an endpoint"
    );
    let _ = writeln!(
        out,
        "limit no network fixes (visible as ~10 retries/msg at the hot node)."
    );

    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("traffic_patterns")),
        ("topology", Json::from("figure3")),
        ("measured_cycles", Json::from(cfg.measure)),
        ("seed", Json::from(cfg.seed)),
        ("points", Json::Arr(rows)),
    ]);
    let scenario = crate::scenarios::load_scenario("traffic_patterns", &cfg, LOADS[1]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("measure", Json::from(cfg.measure))]),
        scenario: Some(crate::scenarios::emit(&scenario)),
        telemetry: None,
    })
}
