//! Regenerates Table 5: contemporary routing technologies and their
//! `t_20,32` estimates, alongside the METRO rows they are compared with
//! in §7.

use metro_harness::{Artifact, ArtifactOutput, Json, RunCtx};
use metro_timing::catalog::table3;
use metro_timing::contemporary::{routers_slower_than, table5};
use metro_timing::report::{render_table5, table5_json};
use std::fmt::Write as _;

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "table5",
        description: "Table 5: contemporary routers vs the METRO estimates",
        quick_profile: "identical to full (closed-form model)",
        full_profile: "all contemporary rows, §7 who-beats-whom comparison",
        run,
    }
}

fn run(_ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let rows = table5();
    let mut out = String::new();
    let _ = writeln!(out, "=== Table 5: contemporary routing technologies ===\n");
    let _ = write!(out, "{}", render_table5(&rows));

    let _ = writeln!(out, "\npublished vs reconstructed t_20,32:");
    for r in &rows {
        let (lo, hi) = r.estimate_t20_32_ns();
        let (plo, phi) = r.published_t20_32_ns;
        let _ = writeln!(
            out,
            "  {:<18} published {:>6.0} -> {:>6.0} ns | reconstructed {:>7.0} -> {:>7.0} ns",
            r.name, plo, phi, lo, hi
        );
    }

    let _ = writeln!(out, "\nparagraph 7 comparison (who METRO beats):");
    let mut comparisons = Vec::new();
    for (metro_name, metro_ns) in [
        ("METROJR-ORBIT gate array", 1250.0),
        ("METROJR 0.8u std cell", 500.0),
        ("METRO 4-cascade full custom", 44.0),
    ] {
        let slower = routers_slower_than(metro_ns);
        let _ = writeln!(
            out,
            "  {metro_name} ({metro_ns} ns): slower contemporaries = {slower:?}"
        );
        comparisons.push(Json::obj([
            ("metro", Json::from(metro_name)),
            ("t20_32_ns", Json::from(metro_ns)),
            (
                "slower_contemporaries",
                Json::Arr(slower.into_iter().map(Json::from).collect()),
            ),
        ]));
    }

    let orbit = &table3()[0];
    let _ = writeln!(
        out,
        "\n'even the minimal gate-array implementation of METRO compares favorably\n with the existing field': METROJR-ORBIT t_20,32 = {} ns",
        orbit.t20_32_ns()
    );

    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("table5")),
        ("points", table5_json(&rows)),
        ("comparisons", Json::Arr(comparisons)),
        ("metrojr_orbit_t20_32_ns", Json::from(orbit.t20_32_ns())),
    ]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("rows", Json::from(points))]),
        scenario: None,
        telemetry: None,
    })
}
