//! Ablation: stochastic output selection (the METRO architecture)
//! versus round-robin and fixed-priority selection, under load and
//! under faults (§4: random selection is "the key to making the
//! protocol robust against dynamic faults").

use metro_core::SelectionPolicy;
use metro_harness::{par_map, Artifact, ArtifactOutput, Json, RunCtx};
use metro_sim::experiment::{run_fault_point, run_load_point};
use std::fmt::Write as _;

const LOADS: [f64; 2] = [0.2, 0.5];

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "ablation_selection",
        description: "random vs round-robin vs fixed backward-port selection",
        quick_profile: "3 policies × (2 loads + 1 fault point), 2.5k measured cycles",
        full_profile: "3 policies × (2 loads + 1 fault point), 6k measured cycles",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let cfg = crate::scenarios::sweep_for("ablation_selection", ctx.quick);

    let policies = [
        SelectionPolicy::Random,
        SelectionPolicy::RoundRobin,
        SelectionPolicy::Fixed,
    ];
    // One worker item per policy; variants share the master seed so the
    // comparison is paired (common randomness).
    let results = par_map(ctx.jobs, &policies, |_, &policy| {
        let mut cfg = cfg.clone();
        cfg.sim.selection = policy;
        let loaded: Vec<_> = LOADS.iter().map(|&l| run_load_point(&cfg, l)).collect();
        let faulty = run_fault_point(&cfg, 0.3, 3, 6);
        (policy, loaded, faulty)
    });

    let mut out = String::new();
    let mut rows = Vec::new();
    let _ = writeln!(out, "=== Ablation: backward-port selection policy ===\n");
    for (policy, loaded, faulty) in &results {
        let _ = writeln!(out, "policy: {policy:?}");
        for (load, p) in LOADS.iter().zip(loaded) {
            let _ = writeln!(
                out,
                "  load {load:.1}: mean {:>7.1} cyc  p95 {:>6}  retries/msg {:>6.3}  delivered {}",
                p.mean_latency, p.p95_latency, p.retries_per_message, p.delivered
            );
            rows.push(Json::obj([
                ("policy", Json::from(format!("{policy:?}"))),
                ("load", Json::from(*load)),
                ("mean_latency", Json::from(p.mean_latency)),
                ("p95_latency", Json::from(p.p95_latency)),
                ("retries_per_message", Json::from(p.retries_per_message)),
                ("delivered", Json::from(p.delivered)),
            ]));
        }
        // Under faults the difference matters most: fixed selection
        // retries down the same path.
        let _ = writeln!(
            out,
            "  faulty (3 routers + 6 links): mean {:>7.1} cyc  retries/msg {:>6.3}  delivered {}  lost {}\n",
            faulty.mean_latency, faulty.retries_per_message, faulty.delivered, faulty.abandoned
        );
        rows.push(Json::obj([
            ("policy", Json::from(format!("{policy:?}"))),
            ("dead_routers", Json::from(3u64)),
            ("dead_links", Json::from(6u64)),
            ("mean_latency", Json::from(faulty.mean_latency)),
            (
                "retries_per_message",
                Json::from(faulty.retries_per_message),
            ),
            ("delivered", Json::from(faulty.delivered)),
            ("abandoned", Json::from(faulty.abandoned)),
        ]));
    }
    let _ = writeln!(
        out,
        "expected shape: random ≈ round-robin when healthy; under faults and"
    );
    let _ = writeln!(
        out,
        "contention, fixed priority concentrates traffic, raising retries/latency."
    );

    let points = rows.len();
    let json = Json::obj([
        ("artifact", Json::from("ablation_selection")),
        ("topology", Json::from("figure3")),
        ("measured_cycles", Json::from(cfg.measure)),
        ("seed", Json::from(cfg.seed)),
        ("points", Json::Arr(rows)),
    ]);
    let scenario = crate::scenarios::load_scenario("ablation_selection", &cfg, LOADS[1]);
    Ok(ArtifactOutput {
        human: out,
        json,
        points,
        params: Json::obj([("measure", Json::from(cfg.measure))]),
        scenario: Some(crate::scenarios::emit(&scenario)),
        telemetry: None,
    })
}
