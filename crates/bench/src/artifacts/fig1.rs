//! Figure 1: the 16×16 multipath network built from 4×2 dilation-2
//! routers and 4×4 dilation-1 routers, its path multiplicity, and the
//! fault-tolerance property its caption and §5.1 claim.

use metro_harness::{Artifact, ArtifactOutput, Json, RunCtx};
use metro_topo::analysis::{path_profile, single_router_tolerance};
use metro_topo::dot::to_dot;
use metro_topo::fault::FaultSet;
use metro_topo::multibutterfly::{Multibutterfly, MultibutterflySpec};
use metro_topo::paths::{count_paths, enumerate_paths};
use std::fmt::Write as _;

/// Registry entry.
#[must_use]
pub fn artifact() -> Artifact {
    Artifact {
        name: "fig1",
        description: "Figure 1 — 16×16 multipath network structure and path counts",
        quick_profile: "identical to full (exhaustive analysis is already fast)",
        full_profile: "full path profile + exhaustive single-router-loss check; writes fig1.dot",
        run,
    }
}

fn run(ctx: &RunCtx) -> Result<ArtifactOutput, String> {
    let spec = MultibutterflySpec::figure1();
    let net = Multibutterfly::build(&spec).map_err(|e| format!("figure 1 network: {e:?}"))?;

    let mut out = String::new();
    let faults = FaultSet::new();
    let dot = to_dot(&net, &faults);
    let dot_path = ctx
        .results
        .write_text("fig1.dot", &dot)
        .map_err(|e| e.to_string())?;
    let _ = writeln!(
        out,
        "wrote {} (render with `dot -Tsvg`)",
        dot_path.display()
    );

    let _ = writeln!(out, "\n=== Figure 1: 16x16 multipath network ===\n");
    let _ = writeln!(out, "endpoints:        {}", net.endpoints());
    let _ = writeln!(out, "ports/endpoint:   {}", net.endpoint_ports());
    let mut stage_rows = Vec::new();
    for s in 0..net.stages() {
        let st = net.stage_spec(s);
        let _ = writeln!(
            out,
            "stage {s}: {:>2} routers of {}x{} (inputs x radix), dilation {}",
            net.routers_in_stage(s),
            st.forward_ports,
            st.radix(),
            st.dilation
        );
        stage_rows.push(Json::obj([
            ("routers", Json::from(net.routers_in_stage(s))),
            ("inputs", Json::from(st.forward_ports)),
            ("radix", Json::from(st.radix())),
            ("dilation", Json::from(st.dilation)),
        ]));
    }

    // The caption highlights endpoints 6 -> 16 (1-indexed); 5 -> 15 here.
    let highlighted = count_paths(&net, 5, 15, &faults);
    let _ = writeln!(
        out,
        "\nwire-level paths endpoint 6 -> endpoint 16 (paper numbering): {highlighted}"
    );
    let routes = enumerate_paths(&net, 5, 15, &faults, 32);
    let _ = writeln!(out, "router-level routes ({}):", routes.len());
    for r in &routes {
        let hops: Vec<String> = r
            .iter()
            .enumerate()
            .map(|(s, idx)| format!("r{s}.{idx}"))
            .collect();
        let _ = writeln!(out, "  {}", hops.join(" -> "));
    }

    let profile = path_profile(&net, &faults);
    let _ = writeln!(
        out,
        "\npath profile over all pairs: min {} / max {} (total {})",
        profile.min_paths, profile.max_paths, profile.total_paths
    );

    // §5.1: the dilation-1 final stage tolerates any single router loss.
    let tolerance = single_router_tolerance(&net);
    let _ = writeln!(out, "\nsingle-router-loss tolerance by stage:");
    for (s, ok) in tolerance.iter().enumerate() {
        let _ = writeln!(
            out,
            "  stage {s}: {}",
            if *ok {
                "every single-router loss leaves all endpoints connected"
            } else {
                "some single-router loss isolates an endpoint"
            }
        );
    }

    let _ = writeln!(out, "\npaper claim check:");
    let _ = writeln!(
        out,
        "  'many paths between each pair of network endpoints'     -> min {} paths",
        profile.min_paths
    );
    let _ = writeln!(
        out,
        "  'tolerate the complete loss of any router in the final\n   stage without isolating any endpoints'                 -> {}",
        if tolerance[2] { "holds" } else { "VIOLATED" }
    );

    let json = Json::obj([
        ("artifact", Json::from("fig1")),
        ("endpoints", Json::from(net.endpoints())),
        ("endpoint_ports", Json::from(net.endpoint_ports())),
        ("stages", Json::Arr(stage_rows)),
        ("paths_pair_6_to_16", Json::from(highlighted)),
        ("router_routes_pair_6_to_16", Json::from(routes.len())),
        ("min_paths", Json::from(profile.min_paths)),
        ("max_paths", Json::from(profile.max_paths)),
        ("total_paths", Json::from(profile.total_paths)),
        (
            "final_stage_tolerates_any_single_router_loss",
            Json::from(tolerance[2]),
        ),
    ]);
    let pairs = net.endpoints() * net.endpoints();
    Ok(ArtifactOutput {
        human: out,
        json,
        points: pairs,
        params: Json::obj([("spec", Json::from("figure1"))]),
        scenario: None,
        telemetry: None,
    })
}
