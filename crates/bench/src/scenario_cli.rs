//! The `metro scenario` verb: run, dump, validate, and fuzz
//! declarative scenario files — and `metro resume`, which continues an
//! interrupted checkpointed run bit-identically.
//!
//! ```text
//! metro scenario run scenarios/figure1.json     # replay + record
//! metro scenario run scenarios/figure1.json --checkpoint-every 64 \
//!                                           --checkpoint-dir checkpoints
//! metro resume checkpoints/figure1.ckpt.json   # continue after a crash
//! metro scenario dump figure3_load              # print a corpus scenario
//! metro scenario validate scenarios/*.json      # byte-stable round-trip check
//! metro scenario fuzz --count 25 --seed 7       # differential Flat vs Reference
//! ```
//!
//! `run` replays the file deterministically, prints the result summary,
//! writes `results/scenario_<name>.json`, and appends a manifest record
//! carrying the scenario's canonical hash — the same reproducibility
//! trail `metro run` leaves for registry artifacts.
//!
//! With `--checkpoint-every K`, the runner additionally snapshots the
//! complete machine state every K cycles to
//! `<checkpoint-dir>/<name>.ckpt.json` (atomic temp+fsync+rename, so a
//! crash can never leave a torn checkpoint). `metro resume <ckpt>`
//! rebuilds the run from the snapshot and finishes it; the resumed
//! result document is byte-identical to the uninterrupted run's.

use crate::scenarios;
use metro_harness::log;
use metro_harness::results::{git_describe, unix_time_now, ResultsDir, RunRecord};
use metro_harness::Json;
use metro_sim::checkpoint::{resume_scenario_with, run_scenario_resumable, Checkpoint};
use metro_sim::scenario::fuzz::{fuzz_campaign, shard_fuzz_campaign};
use metro_sim::scenario::{codec, ScenarioResult};
use metro_sim::CheckpointSink;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> String {
    "usage: metro scenario <command>\n\
     \n\
     commands:\n\
     \x20 run <file.json> [--shards N] [--checkpoint-every K] [--checkpoint-dir D]\n\
     \x20                           replay a scenario file, record the result\n\
     \x20                           (--shards overrides the file's shard count;\n\
     \x20                           --checkpoint-every K snapshots resumable\n\
     \x20                           state every K cycles into --checkpoint-dir,\n\
     \x20                           default `checkpoints`)\n\
     \x20 dump <name>               print a corpus scenario (see `dump --list`)\n\
     \x20 validate <file.json>...   check byte-stable JSON round-trips\n\
     \x20 fuzz [--count N] [--seed S] [--shards N]\n\
     \x20                           differential campaign: Flat vs Reference,\n\
     \x20                           or (with --shards) sharded vs single-thread\n\
     \n\
     see also: metro resume <file.ckpt.json> — continue an interrupted\n\
     checkpointed run; the finished result is byte-identical to the\n\
     uninterrupted run's\n"
        .to_string()
}

/// Periodic on-disk checkpointing policy for `run`/`resume`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointOpts {
    /// Snapshot every this many completed cycles.
    pub every: u64,
    /// Directory the checkpoint file lands in
    /// (`<dir>/<scenario-name>.ckpt.json`, overwritten atomically).
    pub dir: PathBuf,
}

/// Entry point for `metro scenario <args…>`; returns the process exit
/// code.
#[must_use]
pub fn main(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], &ResultsDir::standard()),
        Some("dump") => cmd_dump(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            log::output(&usage());
            i32::from(args.is_empty())
        }
        Some(other) => {
            log::error(&format!("metro scenario: unknown command {other:?}\n"));
            log::error_text(&usage());
            2
        }
    }
}

/// Parses the flags shared by `scenario run` and `resume`: `--shards`,
/// `--checkpoint-every`, `--checkpoint-dir`.
fn parse_run_flags(
    verb: &str,
    args: &[String],
) -> Result<(Option<usize>, Option<CheckpointOpts>), i32> {
    let mut shards = None;
    let mut every = None;
    let mut dir = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => match it.next().map(|s| s.parse::<usize>()) {
                Some(Ok(v)) => shards = Some(v),
                _ => {
                    log::error(&format!("{verb}: --shards needs a count (0 = host auto)"));
                    return Err(2);
                }
            },
            "--checkpoint-every" => match it.next().map(|s| s.parse::<u64>()) {
                Some(Ok(v)) if v > 0 => every = Some(v),
                _ => {
                    log::error(&format!(
                        "{verb}: --checkpoint-every needs a positive cycle count"
                    ));
                    return Err(2);
                }
            },
            "--checkpoint-dir" => match it.next() {
                Some(d) => dir = Some(PathBuf::from(d)),
                None => {
                    log::error(&format!("{verb}: --checkpoint-dir needs a directory"));
                    return Err(2);
                }
            },
            other => {
                log::error(&format!("{verb}: unknown flag {other:?}"));
                return Err(2);
            }
        }
    }
    let checkpoint = match (every, dir) {
        (Some(every), dir) => Some(CheckpointOpts {
            every,
            dir: dir.unwrap_or_else(|| PathBuf::from("checkpoints")),
        }),
        (None, Some(_)) => {
            log::error(&format!(
                "{verb}: --checkpoint-dir needs --checkpoint-every to enable checkpointing"
            ));
            return Err(2);
        }
        (None, None) => None,
    };
    Ok((shards, checkpoint))
}

fn cmd_run(args: &[String], results: &ResultsDir) -> i32 {
    let Some(path) = args.first() else {
        log::error("metro scenario run: missing scenario file");
        return 2;
    };
    let (shards, checkpoint) = match parse_run_flags("metro scenario run", &args[1..]) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    match run_file_with_options(path, results, shards, checkpoint.as_ref()) {
        Ok(summary) => {
            log::output(&summary);
            0
        }
        Err(e) => {
            log::error(&format!("metro scenario run: {e}"));
            1
        }
    }
}

/// Entry point for `metro resume <ckpt>`; returns the process exit
/// code.
#[must_use]
pub fn resume_main(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        log::error(
            "metro resume: missing checkpoint file\n\
             usage: metro resume <file.ckpt.json> [--shards N] \
             [--checkpoint-every K] [--checkpoint-dir D]",
        );
        return 2;
    };
    if matches!(path.as_str(), "--help" | "-h" | "help") {
        log::output(
            "usage: metro resume <file.ckpt.json> [--shards N] \
             [--checkpoint-every K] [--checkpoint-dir D]\n\
             \n\
             continues an interrupted `metro scenario run --checkpoint-every`\n\
             run from its latest snapshot; the finished result document is\n\
             byte-identical to the uninterrupted run's\n",
        );
        return 0;
    }
    let (shards, checkpoint) = match parse_run_flags("metro resume", &args[1..]) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    match resume_file(path, &ResultsDir::standard(), shards, checkpoint.as_ref()) {
        Ok(summary) => {
            log::output(&summary);
            0
        }
        Err(e) => {
            log::error(&format!("metro resume: {e}"));
            1
        }
    }
}

/// Replays one scenario file and records the result; returns the human
/// summary. Split from the arg handling so tests can drive it against a
/// temporary results directory.
///
/// # Errors
///
/// Returns a description of the first failure: unreadable file, codec
/// rejection, invalid topology, or a results-directory write error.
pub fn run_file(path: &str, results: &ResultsDir) -> Result<String, String> {
    run_file_with_shards(path, results, None)
}

/// [`run_file`] with an optional shard-count override (`--shards`).
/// The override changes only the execution strategy — the recorded
/// scenario hash is the *file's* hash, and the result document is
/// bit-identical at every shard count, so a sharded replay reproduces
/// the same artifact faster.
///
/// # Errors
///
/// As [`run_file`].
pub fn run_file_with_shards(
    path: &str,
    results: &ResultsDir,
    shards: Option<usize>,
) -> Result<String, String> {
    run_file_with_options(path, results, shards, None)
}

/// The checkpoint file a scenario's periodic snapshots land in.
fn checkpoint_path(opts: &CheckpointOpts, scenario_name: &str) -> PathBuf {
    opts.dir.join(format!("{scenario_name}.ckpt.json"))
}

/// A periodic-checkpoint hook writing `<dir>/<name>.ckpt.json`
/// atomically (temp + fsync + rename via the results layer), so an
/// interrupted write can never leave a torn checkpoint — the previous
/// complete snapshot survives.
fn checkpoint_writer(
    opts: &CheckpointOpts,
) -> impl FnMut(&Checkpoint) -> Result<(), Box<dyn std::error::Error>> {
    let dir = ResultsDir::new(opts.dir.clone());
    move |ckpt: &Checkpoint| {
        let file = format!("{}.ckpt.json", ckpt.scenario.name);
        dir.write_text(&file, &ckpt.to_json().render())?;
        Ok(())
    }
}

/// [`run_file_with_shards`] plus optional periodic checkpointing
/// (`--checkpoint-every` / `--checkpoint-dir`).
///
/// # Errors
///
/// As [`run_file`]; additionally, a checkpoint that cannot be
/// persisted aborts the run (a checkpoint that cannot be written is
/// not crash safety).
pub fn run_file_with_options(
    path: &str,
    results: &ResultsDir,
    shards: Option<usize>,
    checkpoint: Option<&CheckpointOpts>,
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let mut scenario = codec::from_text(&text).map_err(|e| e.to_string())?;
    let hash = codec::scenario_hash(&scenario);
    if let Some(n) = shards {
        scenario.sim.shards = n;
    }

    let started = Instant::now();
    let mut write_ckpt = checkpoint.map(checkpoint_writer);
    let hook = match (&mut write_ckpt, checkpoint) {
        (Some(sink), Some(opts)) => Some(CheckpointSink {
            every: opts.every,
            sink,
        }),
        _ => None,
    };
    let (result, _sim) =
        run_scenario_resumable(&scenario, None, hook).map_err(|e| e.to_string())?;
    let wall = started.elapsed().as_secs_f64();

    let mut summary = record_scenario_result(
        &scenario.name,
        &hash,
        &result,
        results,
        wall,
        Json::obj([("source", Json::from(path))]),
    )?;
    if let Some(opts) = checkpoint {
        summary.push_str(&format!(
            "  checkpointed every {} cycles to {}\n",
            opts.every,
            checkpoint_path(opts, &scenario.name).display()
        ));
    }
    Ok(summary)
}

/// Continues an interrupted checkpointed run to completion and records
/// the result exactly as [`run_file`] would have: same results
/// document (byte-identical to the uninterrupted run's), same manifest
/// trail. With `checkpoint` options the resumed run keeps taking
/// periodic snapshots, so a resume can itself be interrupted and
/// resumed.
///
/// The recorded scenario hash is the *embedded* scenario's hash; a
/// `--shards` override here (like on `run`) changes only the execution
/// strategy, not the recorded hash or the result bytes.
///
/// # Errors
///
/// Returns a description of the first failure: unreadable or corrupt
/// checkpoint, state-restore mismatch, or a results write error.
pub fn resume_file(
    path: &str,
    results: &ResultsDir,
    shards: Option<usize>,
    checkpoint: Option<&CheckpointOpts>,
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let mut ckpt = Checkpoint::from_text(&text)?;
    let hash = codec::scenario_hash(&ckpt.scenario);
    let resumed_at = ckpt.cycle;
    let phase = ckpt.phase;
    if let Some(n) = shards {
        ckpt.scenario.sim.shards = n;
    }

    let started = Instant::now();
    let mut write_ckpt = checkpoint.map(checkpoint_writer);
    let hook = match (&mut write_ckpt, checkpoint) {
        (Some(sink), Some(opts)) => Some(CheckpointSink {
            every: opts.every,
            sink,
        }),
        _ => None,
    };
    let (result, _sim) = resume_scenario_with(&ckpt, hook).map_err(|e| e.to_string())?;
    let wall = started.elapsed().as_secs_f64();

    let mut summary = record_scenario_result(
        &ckpt.scenario.name,
        &hash,
        &result,
        results,
        wall,
        Json::obj([
            ("source", Json::from(path)),
            ("resumed_at_cycle", Json::from(resumed_at)),
            ("resumed_phase", Json::from(phase.name())),
        ]),
    )?;
    summary.insert_str(
        0,
        &format!("resumed at cycle {resumed_at} ({} phase)\n", phase.name()),
    );
    Ok(summary)
}

/// The shared tail of `run` and `resume`: writes
/// `results/scenario_<name>.json`, appends the manifest record, and
/// renders the human summary. The results document depends only on the
/// scenario and its outcome — not on how the run was segmented — which
/// is what makes straight and resumed runs byte-identical on disk.
fn record_scenario_result(
    name: &str,
    hash: &str,
    result: &ScenarioResult,
    results: &ResultsDir,
    wall: f64,
    params: Json,
) -> Result<String, String> {
    let stem = format!("scenario_{name}");
    let doc = Json::obj([
        ("scenario", Json::from(name)),
        ("scenario_hash", Json::from(hash)),
        ("result", result.to_json()),
    ]);
    let out_path = results.write_json(&stem, &doc).map_err(|e| e.to_string())?;
    results
        .append_manifest(&RunRecord {
            artifact: stem.clone(),
            git: git_describe(),
            unix_time: unix_time_now(),
            wall_seconds: wall,
            points: usize::from(result.point.is_some()),
            jobs: 1,
            quick: false,
            params,
            scenario_hash: Some(hash.to_string()),
            telemetry_hash: None,
            failure: None,
        })
        .map_err(|e| e.to_string())?;

    let mut summary = String::new();
    summary.push_str(&format!(
        "scenario {name:?} ({hash})\n  outcomes {}  delivered {}  abandoned {}  payload words {}  fabric idle {}\n",
        result.outcomes.len(),
        result.delivered,
        result.abandoned,
        result.payload_words,
        result.fabric_idle,
    ));
    if let Some(p) = &result.point {
        summary.push_str(&format!(
            "  load point: offered {:.3}  accepted {:.3}  mean {:.1} cyc  p95 {}  retries/msg {:.3}\n",
            p.offered, p.accepted, p.mean_latency, p.p95_latency, p.retries_per_message
        ));
    }
    summary.push_str(&format!(
        "  outcome digest {:#018x}\n  wrote {}\n",
        result.outcome_digest(),
        out_path.display()
    ));
    Ok(summary)
}

fn cmd_dump(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("--list") => {
            for name in scenarios::NAMED {
                log::output(&format!("{name}\n"));
            }
            0
        }
        Some(name) => match scenarios::named(name) {
            Some(s) => {
                log::output(&scenarios::emit(&s).render());
                0
            }
            None => {
                log::error(&format!(
                    "metro scenario dump: unknown scenario {name:?} (known: {})",
                    scenarios::NAMED.join(", ")
                ));
                2
            }
        },
        None => {
            log::error("metro scenario dump: missing scenario name");
            2
        }
    }
}

fn cmd_validate(args: &[String]) -> i32 {
    if args.is_empty() {
        log::error("metro scenario validate: no files given");
        return 2;
    }
    let mut failures = 0usize;
    for path in args {
        match validate_file(path) {
            Ok(name) => log::info(&format!("ok  {path} ({name})")),
            Err(e) => {
                log::error(&format!("FAIL {path}: {e}"));
                failures += 1;
            }
        }
    }
    i32::from(failures > 0)
}

/// Validates one scenario file: it must parse, decode under the current
/// schema, and re-encode to the *identical bytes* — so schema drift or
/// hand-edits that lose canonical form fail CI rather than silently
/// re-normalizing.
///
/// # Errors
///
/// Returns a description of the first failure.
pub fn validate_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let scenario = codec::from_text(&text).map_err(|e| e.to_string())?;
    let re_rendered = codec::encode(&scenario).render();
    if re_rendered != text {
        return Err(
            "file is not in canonical form (re-encoding changes the bytes); \
             regenerate it with `metro scenario dump`"
                .to_string(),
        );
    }
    Ok(scenario.name)
}

fn cmd_fuzz(args: &[String]) -> i32 {
    let mut count = 25u64;
    let mut seed = 0xD1FF_5EED_u64;
    let mut shards = None;
    fn parse(v: Option<&String>, flag: &str) -> Result<u64, String> {
        let s = v.ok_or_else(|| format!("{flag} needs a value"))?;
        let parsed = match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        };
        parsed.map_err(|e| format!("{flag}: {e}"))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--count" => match parse(it.next(), "--count") {
                Ok(v) => count = v,
                Err(e) => {
                    log::error(&format!("metro scenario fuzz: {e}"));
                    return 2;
                }
            },
            "--seed" => match parse(it.next(), "--seed") {
                Ok(v) => seed = v,
                Err(e) => {
                    log::error(&format!("metro scenario fuzz: {e}"));
                    return 2;
                }
            },
            "--shards" => match parse(it.next(), "--shards") {
                Ok(0 | 1) => {
                    log::error("metro scenario fuzz: --shards expects a count >= 2");
                    return 2;
                }
                Ok(v) => shards = Some(v as usize),
                Err(e) => {
                    log::error(&format!("metro scenario fuzz: {e}"));
                    return 2;
                }
            },
            other => {
                log::error(&format!("metro scenario fuzz: unknown flag {other:?}"));
                return 2;
            }
        }
    }
    let started = Instant::now();
    let outcome = match shards {
        // Shard-differential mode: every seeded scenario replays on the
        // Flat engine at 1 and N shards and must be bit-identical,
        // telemetry snapshots included.
        Some(n) => shard_fuzz_campaign(seed, count, n).map(|done| {
            format!(
                "shard-differential fuzz: {done} scenarios, shards={n} == shards=1 on \
                 every one ({:.1}s, base seed {seed:#x})",
                started.elapsed().as_secs_f64()
            )
        }),
        None => fuzz_campaign(seed, count).map(|done| {
            format!(
                "differential fuzz: {done} scenarios, Flat == Reference on every one \
                 ({:.1}s, base seed {seed:#x})",
                started.elapsed().as_secs_f64()
            )
        }),
    };
    match outcome {
        Ok(msg) => {
            log::info(&msg);
            0
        }
        Err(e) => {
            log::error(&format!("differential fuzz FAILED: {e}"));
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metro-scenario-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn run_file_records_result_and_hash() {
        let dir = temp_dir("run");
        let s = crate::scenarios::named("figure1").unwrap();
        let file = dir.join("figure1.json");
        std::fs::write(&file, codec::encode(&s).render()).unwrap();
        let results = ResultsDir::new(dir.join("results"));

        let summary = run_file(file.to_str().unwrap(), &results).unwrap();
        assert!(summary.contains("scenario \"figure1\""));
        assert!(summary.contains("outcome digest"));

        // The result document landed and carries the scenario hash.
        let doc = Json::parse(
            &std::fs::read_to_string(results.root().join("scenario_figure1.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(
            doc.get("scenario_hash").and_then(Json::as_str),
            Some(codec::scenario_hash(&s).as_str())
        );
        // So did the manifest record.
        let manifest = results.read_manifest().unwrap();
        let runs = manifest.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(
            runs[0].get("scenario_hash").and_then(Json::as_str),
            Some(codec::scenario_hash(&s).as_str())
        );

        // Re-running the same file reproduces the identical result doc.
        run_file(file.to_str().unwrap(), &results).unwrap();
        let again = Json::parse(
            &std::fs::read_to_string(results.root().join("scenario_figure1.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(again, doc, "scenario replay must be reproducible");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_run_resumes_to_a_byte_identical_result() {
        let dir = temp_dir("resume");
        let s = crate::scenarios::named("figure1").unwrap();
        let file = dir.join("figure1.json");
        std::fs::write(&file, codec::encode(&s).render()).unwrap();

        // The uninterrupted reference run.
        let straight = ResultsDir::new(dir.join("straight"));
        run_file(file.to_str().unwrap(), &straight).unwrap();
        let reference =
            std::fs::read_to_string(straight.root().join("scenario_figure1.json")).unwrap();

        // A checkpointed run: the latest snapshot lands in ckpts/.
        let opts = CheckpointOpts {
            every: 64,
            dir: dir.join("ckpts"),
        };
        let checkpointed = ResultsDir::new(dir.join("checkpointed"));
        let summary =
            run_file_with_options(file.to_str().unwrap(), &checkpointed, None, Some(&opts))
                .unwrap();
        assert!(
            summary.contains("checkpointed every 64 cycles"),
            "{summary}"
        );
        let ckpt_file = opts.dir.join("figure1.ckpt.json");
        assert!(ckpt_file.exists(), "periodic snapshot written");

        // Pretend the checkpointed run crashed after its last snapshot:
        // resume from the file into a fresh results directory. The
        // resumed result document must be byte-identical to the
        // uninterrupted run's.
        let resumed = ResultsDir::new(dir.join("resumed"));
        let summary = resume_file(ckpt_file.to_str().unwrap(), &resumed, None, None).unwrap();
        assert!(summary.starts_with("resumed at cycle"), "{summary}");
        let resumed_doc =
            std::fs::read_to_string(resumed.root().join("scenario_figure1.json")).unwrap();
        assert_eq!(resumed_doc, reference, "resume must be bit-identical");

        // The resumed run's manifest records where it picked up.
        let manifest = resumed.read_manifest().unwrap();
        let runs = manifest.get("runs").and_then(Json::as_arr).unwrap();
        let params = runs[0].get("params").unwrap();
        assert!(params.get("resumed_at_cycle").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_a_torn_checkpoint() {
        let dir = temp_dir("torn");
        let s = crate::scenarios::named("figure1").unwrap();
        let file = dir.join("figure1.json");
        std::fs::write(&file, codec::encode(&s).render()).unwrap();
        let opts = CheckpointOpts {
            every: 64,
            dir: dir.join("ckpts"),
        };
        let results = ResultsDir::new(dir.join("results"));
        run_file_with_options(file.to_str().unwrap(), &results, None, Some(&opts)).unwrap();
        let ckpt_file = opts.dir.join("figure1.ckpt.json");
        let text = std::fs::read_to_string(&ckpt_file).unwrap();
        std::fs::write(&ckpt_file, &text[..text.len() / 2]).unwrap();
        let err = resume_file(ckpt_file.to_str().unwrap(), &results, None, None).unwrap_err();
        assert!(!err.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_accepts_canonical_and_rejects_edited_files() {
        let dir = temp_dir("validate");
        let s = crate::scenarios::named("cascade_w4").unwrap();
        let good = dir.join("good.json");
        std::fs::write(&good, codec::encode(&s).render()).unwrap();
        assert_eq!(validate_file(good.to_str().unwrap()).unwrap(), "cascade_w4");

        // Whitespace-only edits are not canonical.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, codec::encode(&s).render_compact()).unwrap();
        assert!(validate_file(bad.to_str().unwrap())
            .unwrap_err()
            .contains("canonical"));

        // Unknown fields are rejected by the codec itself.
        let mut doc = codec::encode(&s);
        doc.set("surprise", Json::from(1u64));
        let unknown = dir.join("unknown.json");
        std::fs::write(&unknown, doc.render()).unwrap();
        assert!(validate_file(unknown.to_str().unwrap()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
