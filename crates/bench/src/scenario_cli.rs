//! The `metro scenario` verb: run, dump, validate, and fuzz
//! declarative scenario files.
//!
//! ```text
//! metro scenario run scenarios/figure1.json     # replay + record
//! metro scenario dump figure3_load              # print a corpus scenario
//! metro scenario validate scenarios/*.json      # byte-stable round-trip check
//! metro scenario fuzz --count 25 --seed 7       # differential Flat vs Reference
//! ```
//!
//! `run` replays the file deterministically, prints the result summary,
//! writes `results/scenario_<name>.json`, and appends a manifest record
//! carrying the scenario's canonical hash — the same reproducibility
//! trail `metro run` leaves for registry artifacts.

use crate::scenarios;
use metro_harness::log;
use metro_harness::results::{git_describe, unix_time_now, ResultsDir, RunRecord};
use metro_harness::Json;
use metro_sim::scenario::fuzz::{fuzz_campaign, shard_fuzz_campaign};
use metro_sim::scenario::{codec, run_scenario};
use std::time::Instant;

fn usage() -> String {
    "usage: metro scenario <command>\n\
     \n\
     commands:\n\
     \x20 run <file.json> [--shards N]\n\
     \x20                           replay a scenario file, record the result\n\
     \x20                           (--shards overrides the file's shard count)\n\
     \x20 dump <name>               print a corpus scenario (see `dump --list`)\n\
     \x20 validate <file.json>...   check byte-stable JSON round-trips\n\
     \x20 fuzz [--count N] [--seed S] [--shards N]\n\
     \x20                           differential campaign: Flat vs Reference,\n\
     \x20                           or (with --shards) sharded vs single-thread\n"
        .to_string()
}

/// Entry point for `metro scenario <args…>`; returns the process exit
/// code.
#[must_use]
pub fn main(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..], &ResultsDir::standard()),
        Some("dump") => cmd_dump(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            log::output(&usage());
            i32::from(args.is_empty())
        }
        Some(other) => {
            log::error(&format!("metro scenario: unknown command {other:?}\n"));
            log::error_text(&usage());
            2
        }
    }
}

fn cmd_run(args: &[String], results: &ResultsDir) -> i32 {
    let Some(path) = args.first() else {
        log::error("metro scenario run: missing scenario file");
        return 2;
    };
    let mut shards = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => match it.next().map(|s| s.parse::<usize>()) {
                Some(Ok(v)) => shards = Some(v),
                _ => {
                    log::error("metro scenario run: --shards needs a count (0 = host auto)");
                    return 2;
                }
            },
            other => {
                log::error(&format!("metro scenario run: unknown flag {other:?}"));
                return 2;
            }
        }
    }
    match run_file_with_shards(path, results, shards) {
        Ok(summary) => {
            log::output(&summary);
            0
        }
        Err(e) => {
            log::error(&format!("metro scenario run: {e}"));
            1
        }
    }
}

/// Replays one scenario file and records the result; returns the human
/// summary. Split from the arg handling so tests can drive it against a
/// temporary results directory.
///
/// # Errors
///
/// Returns a description of the first failure: unreadable file, codec
/// rejection, invalid topology, or a results-directory write error.
pub fn run_file(path: &str, results: &ResultsDir) -> Result<String, String> {
    run_file_with_shards(path, results, None)
}

/// [`run_file`] with an optional shard-count override (`--shards`).
/// The override changes only the execution strategy — the recorded
/// scenario hash is the *file's* hash, and the result document is
/// bit-identical at every shard count, so a sharded replay reproduces
/// the same artifact faster.
///
/// # Errors
///
/// As [`run_file`].
pub fn run_file_with_shards(
    path: &str,
    results: &ResultsDir,
    shards: Option<usize>,
) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let mut scenario = codec::from_text(&text).map_err(|e| e.to_string())?;
    let hash = codec::scenario_hash(&scenario);
    if let Some(n) = shards {
        scenario.sim.shards = n;
    }

    let started = Instant::now();
    let result = run_scenario(&scenario).map_err(|e| e.to_string())?;
    let wall = started.elapsed().as_secs_f64();

    let stem = format!("scenario_{}", scenario.name);
    let doc = Json::obj([
        ("scenario", Json::from(scenario.name.as_str())),
        ("scenario_hash", Json::from(hash.as_str())),
        ("result", result.to_json()),
    ]);
    let out_path = results.write_json(&stem, &doc).map_err(|e| e.to_string())?;
    results
        .append_manifest(&RunRecord {
            artifact: stem.clone(),
            git: git_describe(),
            unix_time: unix_time_now(),
            wall_seconds: wall,
            points: usize::from(result.point.is_some()),
            jobs: 1,
            quick: false,
            params: Json::obj([("source", Json::from(path))]),
            scenario_hash: Some(hash.clone()),
            telemetry_hash: None,
        })
        .map_err(|e| e.to_string())?;

    let mut summary = String::new();
    summary.push_str(&format!(
        "scenario {:?} ({hash})\n  outcomes {}  delivered {}  abandoned {}  payload words {}  fabric idle {}\n",
        scenario.name,
        result.outcomes.len(),
        result.delivered,
        result.abandoned,
        result.payload_words,
        result.fabric_idle,
    ));
    if let Some(p) = &result.point {
        summary.push_str(&format!(
            "  load point: offered {:.3}  accepted {:.3}  mean {:.1} cyc  p95 {}  retries/msg {:.3}\n",
            p.offered, p.accepted, p.mean_latency, p.p95_latency, p.retries_per_message
        ));
    }
    summary.push_str(&format!(
        "  outcome digest {:#018x}\n  wrote {}\n",
        result.outcome_digest(),
        out_path.display()
    ));
    Ok(summary)
}

fn cmd_dump(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("--list") => {
            for name in scenarios::NAMED {
                log::output(&format!("{name}\n"));
            }
            0
        }
        Some(name) => match scenarios::named(name) {
            Some(s) => {
                log::output(&scenarios::emit(&s).render());
                0
            }
            None => {
                log::error(&format!(
                    "metro scenario dump: unknown scenario {name:?} (known: {})",
                    scenarios::NAMED.join(", ")
                ));
                2
            }
        },
        None => {
            log::error("metro scenario dump: missing scenario name");
            2
        }
    }
}

fn cmd_validate(args: &[String]) -> i32 {
    if args.is_empty() {
        log::error("metro scenario validate: no files given");
        return 2;
    }
    let mut failures = 0usize;
    for path in args {
        match validate_file(path) {
            Ok(name) => log::info(&format!("ok  {path} ({name})")),
            Err(e) => {
                log::error(&format!("FAIL {path}: {e}"));
                failures += 1;
            }
        }
    }
    i32::from(failures > 0)
}

/// Validates one scenario file: it must parse, decode under the current
/// schema, and re-encode to the *identical bytes* — so schema drift or
/// hand-edits that lose canonical form fail CI rather than silently
/// re-normalizing.
///
/// # Errors
///
/// Returns a description of the first failure.
pub fn validate_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let scenario = codec::from_text(&text).map_err(|e| e.to_string())?;
    let re_rendered = codec::encode(&scenario).render();
    if re_rendered != text {
        return Err(
            "file is not in canonical form (re-encoding changes the bytes); \
             regenerate it with `metro scenario dump`"
                .to_string(),
        );
    }
    Ok(scenario.name)
}

fn cmd_fuzz(args: &[String]) -> i32 {
    let mut count = 25u64;
    let mut seed = 0xD1FF_5EED_u64;
    let mut shards = None;
    fn parse(v: Option<&String>, flag: &str) -> Result<u64, String> {
        let s = v.ok_or_else(|| format!("{flag} needs a value"))?;
        let parsed = match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        };
        parsed.map_err(|e| format!("{flag}: {e}"))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--count" => match parse(it.next(), "--count") {
                Ok(v) => count = v,
                Err(e) => {
                    log::error(&format!("metro scenario fuzz: {e}"));
                    return 2;
                }
            },
            "--seed" => match parse(it.next(), "--seed") {
                Ok(v) => seed = v,
                Err(e) => {
                    log::error(&format!("metro scenario fuzz: {e}"));
                    return 2;
                }
            },
            "--shards" => match parse(it.next(), "--shards") {
                Ok(0 | 1) => {
                    log::error("metro scenario fuzz: --shards expects a count >= 2");
                    return 2;
                }
                Ok(v) => shards = Some(v as usize),
                Err(e) => {
                    log::error(&format!("metro scenario fuzz: {e}"));
                    return 2;
                }
            },
            other => {
                log::error(&format!("metro scenario fuzz: unknown flag {other:?}"));
                return 2;
            }
        }
    }
    let started = Instant::now();
    let outcome = match shards {
        // Shard-differential mode: every seeded scenario replays on the
        // Flat engine at 1 and N shards and must be bit-identical,
        // telemetry snapshots included.
        Some(n) => shard_fuzz_campaign(seed, count, n).map(|done| {
            format!(
                "shard-differential fuzz: {done} scenarios, shards={n} == shards=1 on \
                 every one ({:.1}s, base seed {seed:#x})",
                started.elapsed().as_secs_f64()
            )
        }),
        None => fuzz_campaign(seed, count).map(|done| {
            format!(
                "differential fuzz: {done} scenarios, Flat == Reference on every one \
                 ({:.1}s, base seed {seed:#x})",
                started.elapsed().as_secs_f64()
            )
        }),
    };
    match outcome {
        Ok(msg) => {
            log::info(&msg);
            0
        }
        Err(e) => {
            log::error(&format!("differential fuzz FAILED: {e}"));
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metro-scenario-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn run_file_records_result_and_hash() {
        let dir = temp_dir("run");
        let s = crate::scenarios::named("figure1").unwrap();
        let file = dir.join("figure1.json");
        std::fs::write(&file, codec::encode(&s).render()).unwrap();
        let results = ResultsDir::new(dir.join("results"));

        let summary = run_file(file.to_str().unwrap(), &results).unwrap();
        assert!(summary.contains("scenario \"figure1\""));
        assert!(summary.contains("outcome digest"));

        // The result document landed and carries the scenario hash.
        let doc = Json::parse(
            &std::fs::read_to_string(results.root().join("scenario_figure1.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(
            doc.get("scenario_hash").and_then(Json::as_str),
            Some(codec::scenario_hash(&s).as_str())
        );
        // So did the manifest record.
        let manifest = results.read_manifest().unwrap();
        let runs = manifest.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(
            runs[0].get("scenario_hash").and_then(Json::as_str),
            Some(codec::scenario_hash(&s).as_str())
        );

        // Re-running the same file reproduces the identical result doc.
        run_file(file.to_str().unwrap(), &results).unwrap();
        let again = Json::parse(
            &std::fs::read_to_string(results.root().join("scenario_figure1.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(again, doc, "scenario replay must be reproducible");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_accepts_canonical_and_rejects_edited_files() {
        let dir = temp_dir("validate");
        let s = crate::scenarios::named("cascade_w4").unwrap();
        let good = dir.join("good.json");
        std::fs::write(&good, codec::encode(&s).render()).unwrap();
        assert_eq!(validate_file(good.to_str().unwrap()).unwrap(), "cascade_w4");

        // Whitespace-only edits are not canonical.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, codec::encode(&s).render_compact()).unwrap();
        assert!(validate_file(bad.to_str().unwrap())
            .unwrap_err()
            .contains("canonical"));

        // Unknown fields are rejected by the codec itself.
        let mut doc = codec::encode(&s);
        doc.set("surprise", Json::from(1u64));
        let unknown = dir.join("unknown.json");
        std::fs::write(&unknown, doc.render()).unwrap();
        assert!(validate_file(unknown.to_str().unwrap()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
