//! The `metro report` verb: render telemetry sidecars as per-stage
//! tables.
//!
//! ```text
//! metro report                       # every *.telemetry.json in results/
//! metro report fig3 fault_sweep      # named artifacts only
//! metro report --dir other/results   # alternate results directory
//! ```
//!
//! Each sidecar is a schema-versioned `TelemetrySnapshot` document
//! written by `metro run`; the table shows per-stage opens, grants,
//! blocks (with block rate), fast reclaims, turns, drops, forwarded
//! words, and channel utilization, plus the latency distribution line.

use metro_harness::log;
use metro_telemetry::{report, snapshot};
use std::path::{Path, PathBuf};

fn usage() -> String {
    "usage: metro report [<artifact>...] [--dir DIR]\n\
     \n\
     renders results/<artifact>.telemetry.json sidecars as per-stage\n\
     utilization / block-rate / latency tables. With no artifact names,\n\
     reports every telemetry sidecar in the directory.\n"
        .to_string()
}

/// Renders one sidecar file to its table.
///
/// # Errors
///
/// Returns a description if the file is unreadable or not a valid
/// telemetry snapshot.
pub fn render_file(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let snap = snapshot::from_text(&text).map_err(|e| e.to_string())?;
    Ok(report::render(&snap))
}

/// All `*.telemetry.json` files under `dir`, sorted by name so the
/// report order is deterministic.
fn sidecars_in(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut found = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let path = entry.path();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".telemetry.json"))
        {
            found.push(path);
        }
    }
    found.sort();
    Ok(found)
}

/// Renders the report for a results directory: named artifacts if any,
/// otherwise every sidecar present. Tables are separated by blank
/// lines.
///
/// # Errors
///
/// Returns a description of the first failure (missing sidecar,
/// unreadable directory, malformed snapshot).
pub fn render_dir(dir: &Path, names: &[String]) -> Result<String, String> {
    let paths: Vec<PathBuf> = if names.is_empty() {
        let found = sidecars_in(dir)?;
        if found.is_empty() {
            return Err(format!(
                "no telemetry sidecars (*.telemetry.json) in {}",
                dir.display()
            ));
        }
        found
    } else {
        names
            .iter()
            .map(|n| dir.join(format!("{n}.telemetry.json")))
            .collect()
    };
    let mut out = String::new();
    for (i, path) in paths.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_file(path)?);
    }
    Ok(out)
}

/// Entry point for `metro report <args…>`; returns the process exit
/// code.
#[must_use]
pub fn main(args: &[String]) -> i32 {
    let mut dir = PathBuf::from("results");
    let mut names = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" | "help" => {
                log::output(&usage());
                return 0;
            }
            "--dir" => {
                let Some(v) = it.next() else {
                    log::error("metro report: --dir needs a value");
                    return 2;
                };
                dir = PathBuf::from(v);
            }
            flag if flag.starts_with("--") => {
                log::error(&format!("metro report: unknown flag {flag:?}\n"));
                log::error_text(&usage());
                return 2;
            }
            name => names.push(name.to_string()),
        }
    }
    match render_dir(&dir, &names) {
        Ok(text) => {
            log::output(&text);
            0
        }
        Err(e) => {
            log::error(&format!("metro report: {e}"));
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metro_harness::ResultsDir;

    fn temp_results(tag: &str) -> ResultsDir {
        let dir =
            std::env::temp_dir().join(format!("metro-report-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultsDir::new(dir)
    }

    /// A tiny snapshot document via the sim, so the test exercises the
    /// same path `metro run` writes through.
    fn write_sidecar(results: &ResultsDir, name: &str) {
        use metro_sim::{NetworkSim, SimConfig};
        use metro_topo::multibutterfly::MultibutterflySpec;
        let mut sim =
            NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap();
        sim.send(0, 9, &[1, 2, 3]);
        sim.run(200);
        let snap = sim.telemetry_snapshot(name);
        results
            .write_json(&format!("{name}.telemetry"), &snap.to_json())
            .unwrap();
    }

    #[test]
    fn report_renders_named_and_discovered_sidecars() {
        let results = temp_results("render");
        write_sidecar(&results, "alpha");
        write_sidecar(&results, "beta");

        let named = render_dir(results.root(), &["beta".to_string()]).unwrap();
        assert!(named.starts_with("== beta :: flat engine"));

        let all = render_dir(results.root(), &[]).unwrap();
        let alpha_at = all.find("== alpha").unwrap();
        let beta_at = all.find("== beta").unwrap();
        assert!(alpha_at < beta_at, "discovery order is sorted by name");
        let _ = std::fs::remove_dir_all(results.root());
    }

    #[test]
    fn missing_sidecar_is_an_error() {
        let results = temp_results("missing");
        std::fs::create_dir_all(results.root()).unwrap();
        let err = render_dir(results.root(), &["ghost".to_string()]).unwrap_err();
        assert!(err.contains("ghost.telemetry.json"));
        let empty = render_dir(results.root(), &[]).unwrap_err();
        assert!(empty.contains("no telemetry sidecars"));
        let _ = std::fs::remove_dir_all(results.root());
    }
}
