//! # metro-bench — regeneration harness for every table and figure
//!
//! One binary per paper artifact:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `fig1` | Figure 1 — the 16×16 multipath network and its path structure |
//! | `fig3` | Figure 3 — latency versus load on the 3-stage radix-4 network |
//! | `table2` | Table 2 — configuration options and scan-register bit budget |
//! | `table3` | Table 3 — METRO implementation examples (`t_20,32`) |
//! | `table4` | Table 4 — the latency equations, worked through |
//! | `table5` | Table 5 — contemporary routing technologies |
//! | `fault_sweep` | §6.2 — performance degradation under faults |
//! | `ablation_selection` | random vs round-robin vs fixed output selection |
//! | `ablation_reclaim` | fast vs detailed path reclamation |
//! | `ablation_dilation` | dilated multipath vs non-dilated network |
//! | `ablation_pipelining` | `hw`/`dp`/wire-delay pipelining options |
//! | `ablation_concurrency` | one vs two transmit engines per endpoint |
//! | `traffic_patterns` | uniform / hotspot / transpose / bit-reversal |
//! | `scaling` | 16 → 256 endpoints at fixed router technology |
//! | `cascade_sim` | cascade width: simulated cycles vs the Table 4 model |
//! | `occupancy` | per-router load balance, uniform vs hotspot |
//! | `fattree_budget` | fat-tree router budgets from METRO parts |
//! | `message_sizes` | size sweeps and implementation crossovers |
//!
//! Criterion benches (`cargo bench`) cover the same artifacts at
//! micro scale plus router/allocator microbenchmarks.

#![forbid(unsafe_code)]

use metro_sim::experiment::LoadPoint;

/// Renders a latency-versus-load table in a fixed-width layout shared
/// by the sweep binaries.
#[must_use]
pub fn render_load_points(points: &[LoadPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>9} {:>10} {:>8} {:>8} {:>12} {:>10}",
        "offered", "accepted", "mean(cyc)", "p50", "p95", "retries/msg", "delivered"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for p in points {
        let _ = writeln!(
            out,
            "{:>8.3} {:>9.3} {:>10.1} {:>8} {:>8} {:>12.3} {:>10}",
            p.offered,
            p.accepted,
            p.mean_latency,
            p.p50_latency,
            p.p95_latency,
            p.retries_per_message,
            p.delivered
        );
    }
    out
}

/// A simple ASCII plot of latency versus load for terminal output.
#[must_use]
pub fn ascii_curve(points: &[LoadPoint], height: usize) -> String {
    if points.is_empty() {
        return String::new();
    }
    let max = points
        .iter()
        .map(|p| p.mean_latency)
        .fold(f64::MIN, f64::max);
    let mut out = String::new();
    for row in (0..height).rev() {
        let threshold = max * (row as f64 + 0.5) / height as f64;
        let line: String = points
            .iter()
            .map(|p| {
                if p.mean_latency >= threshold {
                    '█'
                } else {
                    ' '
                }
            })
            .collect();
        out.push_str(&format!(
            "{:>8.0} |{}\n",
            max * (row as f64 + 1.0) / height as f64,
            line
        ));
    }
    out.push_str(&format!("         +{}\n", "-".repeat(points.len())));
    out.push_str(&format!(
        "          load {:.2} .. {:.2}\n",
        points[0].offered,
        points[points.len() - 1].offered
    ));
    out
}

/// Renders load points as CSV (offered, accepted, mean, p50, p95,
/// retries, delivered) for plotting.
#[must_use]
pub fn load_points_csv(points: &[LoadPoint]) -> String {
    use std::fmt::Write as _;
    let mut out =
        String::from("offered,accepted,mean_latency,p50,p95,retries_per_message,delivered\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            p.offered,
            p.accepted,
            p.mean_latency,
            p.p50_latency,
            p.p95_latency,
            p.retries_per_message,
            p.delivered
        );
    }
    out
}

/// Writes a CSV artifact under `results/`, creating the directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_result_csv(name: &str, csv: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, csv)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(offered: f64, mean: f64) -> LoadPoint {
        LoadPoint {
            offered,
            accepted: offered,
            mean_latency: mean,
            p50_latency: mean as u64,
            p95_latency: (mean * 2.0) as u64,
            mean_network_latency: mean,
            retries_per_message: 0.1,
            delivered: 100,
        }
    }

    #[test]
    fn load_points_render_one_line_each() {
        let s = render_load_points(&[point(0.1, 30.0), point(0.5, 90.0)]);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("0.100"));
    }

    #[test]
    fn ascii_curve_has_requested_height() {
        let s = ascii_curve(&[point(0.1, 30.0), point(0.5, 90.0)], 5);
        assert_eq!(s.lines().count(), 7);
    }

    #[test]
    fn ascii_curve_empty_is_empty() {
        assert!(ascii_curve(&[], 5).is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = load_points_csv(&[point(0.1, 30.0)]);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("offered,"));
        assert!(lines.next().unwrap().starts_with("0.1,"));
        assert!(lines.next().is_none());
    }
}
