//! # metro-bench — regeneration harness for every table and figure
//!
//! Every paper artifact is an entry in the [`artifacts`] registry,
//! fronted by the single `metro` CLI:
//!
//! ```text
//! cargo run --release -p metro-bench --bin metro -- list
//! cargo run --release -p metro-bench --bin metro -- run fig3 --quick --jobs 8
//! cargo run --release -p metro-bench --bin metro -- run --all --quick
//! ```
//!
//! Each run prints the human report, writes machine-readable
//! `results/<artifact>.json`, and appends a record (git revision,
//! wall-clock, point count, worker count, parameters) to
//! `results/manifest.json`. The historical one-artifact binaries
//! (`fig3`, `table3`, …) still exist as thin shims over the same
//! registry entries.
//!
//! | artifact | reproduces |
//! |----------|------------|
//! | `fig1` | Figure 1 — the 16×16 multipath network and its path structure |
//! | `fig3` | Figure 3 — latency versus load on the 3-stage radix-4 network |
//! | `table2` | Table 2 — configuration options and scan-register bit budget |
//! | `table3` | Table 3 — METRO implementation examples (`t_20,32`) |
//! | `table4` | Table 4 — the latency equations, worked through |
//! | `table5` | Table 5 — contemporary routing technologies |
//! | `fault_sweep` | §6.2 — performance degradation under faults |
//! | `chaos` | §5.1/§5.3 — fault-storm campaigns against the self-healing loop |
//! | `ablation_selection` | random vs round-robin vs fixed output selection |
//! | `ablation_reclaim` | fast vs detailed path reclamation |
//! | `ablation_dilation` | dilated multipath vs non-dilated network |
//! | `ablation_pipelining` | `hw`/`dp`/wire-delay pipelining options |
//! | `ablation_concurrency` | one vs two transmit engines per endpoint |
//! | `traffic_patterns` | uniform / hotspot / transpose / bit-reversal |
//! | `scaling` | 16 → 256 endpoints at fixed router technology |
//! | `cascade_sim` | cascade width: simulated cycles vs the Table 4 model |
//! | `occupancy` | per-router load balance, uniform vs hotspot |
//! | `fattree_budget` | fat-tree router budgets from METRO parts |
//! | `message_sizes` | size sweeps and implementation crossovers |
//! | `tick_bench` | simulator engine throughput (flat vs reference) |
//! | `shard_bench` | sharded flat-engine throughput at 1/2/4 shards (metro1k) |
//! | `workload_bench` | flat-engine throughput, uniform vs bursty hotspot traffic |
//! | `estimate_bench` | analytic estimator vs flat engine on metro1k |
//!
//! Criterion benches (`cargo bench`) cover the same artifacts at
//! micro scale plus router/allocator microbenchmarks.

#![forbid(unsafe_code)]

pub mod artifacts;
pub mod chaos_cli;
pub mod report_cli;
pub mod scenario_cli;
pub mod scenarios;

use metro_harness::{Json, Registry, ResultsDir, ResultsError};
use metro_sim::experiment::{FaultSweepPoint, LoadPoint};

/// Builds the full artifact registry (all 23 paper artifacts).
#[must_use]
pub fn registry() -> Registry {
    artifacts::registry()
}

/// Renders a latency-versus-load table in a fixed-width layout shared
/// by the sweep binaries.
#[must_use]
pub fn render_load_points(points: &[LoadPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>8} {:>9} {:>10} {:>8} {:>8} {:>12} {:>10}",
        "offered", "accepted", "mean(cyc)", "p50", "p95", "retries/msg", "delivered"
    );
    let _ = writeln!(out, "{}", "-".repeat(72));
    for p in points {
        let _ = writeln!(
            out,
            "{:>8.3} {:>9.3} {:>10.1} {:>8} {:>8} {:>12.3} {:>10}",
            p.offered,
            p.accepted,
            p.mean_latency,
            p.p50_latency,
            p.p95_latency,
            p.retries_per_message,
            p.delivered
        );
    }
    out
}

/// A simple ASCII plot of latency versus load for terminal output.
#[must_use]
pub fn ascii_curve(points: &[LoadPoint], height: usize) -> String {
    if points.is_empty() {
        return String::new();
    }
    let max = points
        .iter()
        .map(|p| p.mean_latency)
        .fold(f64::MIN, f64::max);
    let mut out = String::new();
    for row in (0..height).rev() {
        let threshold = max * (row as f64 + 0.5) / height as f64;
        let line: String = points
            .iter()
            .map(|p| {
                if p.mean_latency >= threshold {
                    '█'
                } else {
                    ' '
                }
            })
            .collect();
        out.push_str(&format!(
            "{:>8.0} |{}\n",
            max * (row as f64 + 1.0) / height as f64,
            line
        ));
    }
    out.push_str(&format!("         +{}\n", "-".repeat(points.len())));
    out.push_str(&format!(
        "          load {:.2} .. {:.2}\n",
        points[0].offered,
        points[points.len() - 1].offered
    ));
    out
}

/// Renders load points as CSV (offered, accepted, mean, p50, p95,
/// retries, delivered) for plotting.
#[must_use]
pub fn load_points_csv(points: &[LoadPoint]) -> String {
    use std::fmt::Write as _;
    let mut out =
        String::from("offered,accepted,mean_latency,p50,p95,retries_per_message,delivered\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{}",
            p.offered,
            p.accepted,
            p.mean_latency,
            p.p50_latency,
            p.p95_latency,
            p.retries_per_message,
            p.delivered
        );
    }
    out
}

/// Renders load points as a JSON array for the results layer.
#[must_use]
pub fn load_points_json(points: &[LoadPoint]) -> Json {
    Json::arr(points.iter().map(|p| {
        Json::obj([
            ("offered", Json::from(p.offered)),
            ("accepted", Json::from(p.accepted)),
            ("mean_latency", Json::from(p.mean_latency)),
            ("p50_latency", Json::from(p.p50_latency)),
            ("p95_latency", Json::from(p.p95_latency)),
            ("mean_network_latency", Json::from(p.mean_network_latency)),
            ("retries_per_message", Json::from(p.retries_per_message)),
            ("delivered", Json::from(p.delivered)),
        ])
    }))
}

/// Renders fault-sweep points as a JSON array for the results layer.
#[must_use]
pub fn fault_points_json(points: &[FaultSweepPoint]) -> Json {
    Json::arr(points.iter().map(|p| {
        Json::obj([
            ("dead_routers", Json::from(p.dead_routers)),
            ("dead_links", Json::from(p.dead_links)),
            ("mean_latency", Json::from(p.mean_latency)),
            ("p95_latency", Json::from(p.p95_latency)),
            ("retries_per_message", Json::from(p.retries_per_message)),
            ("accepted", Json::from(p.accepted)),
            ("delivered", Json::from(p.delivered)),
            ("abandoned", Json::from(p.abandoned)),
        ])
    }))
}

/// Writes a CSV artifact under `results/`, creating the directory if
/// missing.
///
/// # Errors
///
/// Returns a typed [`ResultsError`] naming the failing path (not a bare
/// `io::Error` silently tied to the working directory).
pub fn write_result_csv(name: &str, csv: &str) -> Result<std::path::PathBuf, ResultsError> {
    write_result_csv_in(&ResultsDir::standard(), name, csv)
}

/// [`write_result_csv`] into an explicit results directory (tests point
/// this at a temporary location).
///
/// # Errors
///
/// Returns a typed [`ResultsError`] naming the failing path.
pub fn write_result_csv_in(
    dir: &ResultsDir,
    name: &str,
    csv: &str,
) -> Result<std::path::PathBuf, ResultsError> {
    dir.write_text(name, csv)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(offered: f64, mean: f64) -> LoadPoint {
        LoadPoint {
            offered,
            accepted: offered,
            mean_latency: mean,
            p50_latency: mean as u64,
            p95_latency: (mean * 2.0) as u64,
            mean_network_latency: mean,
            retries_per_message: 0.1,
            delivered: 100,
        }
    }

    #[test]
    fn load_points_render_one_line_each() {
        let s = render_load_points(&[point(0.1, 30.0), point(0.5, 90.0)]);
        assert_eq!(s.lines().count(), 4);
        assert!(s.contains("0.100"));
    }

    #[test]
    fn ascii_curve_has_requested_height() {
        let s = ascii_curve(&[point(0.1, 30.0), point(0.5, 90.0)], 5);
        assert_eq!(s.lines().count(), 7);
    }

    #[test]
    fn ascii_curve_empty_is_empty() {
        assert!(ascii_curve(&[], 5).is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = load_points_csv(&[point(0.1, 30.0)]);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("offered,"));
        assert!(lines.next().unwrap().starts_with("0.1,"));
        assert!(lines.next().is_none());
    }

    #[test]
    fn json_points_mirror_the_struct() {
        let doc = load_points_json(&[point(0.1, 30.0)]);
        let row = &doc.as_arr().unwrap()[0];
        assert_eq!(row.get("offered").and_then(Json::as_f64), Some(0.1));
        assert_eq!(row.get("delivered").and_then(Json::as_f64), Some(100.0));
        // And it survives the writer/parser round-trip.
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn write_result_csv_creates_missing_directory() {
        let root = std::env::temp_dir().join(format!(
            "metro-bench-csv-{}/nested/results",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let dir = ResultsDir::new(&root);
        let path = write_result_csv_in(&dir, "t.csv", "a,b\n1,2\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(root.parent().unwrap().parent().unwrap());
    }

    #[test]
    fn write_result_csv_reports_a_typed_error() {
        // A file where the directory should be forces a creation error
        // that names the offending path.
        let base = std::env::temp_dir().join(format!("metro-bench-block-{}", std::process::id()));
        std::fs::write(&base, "occupied").unwrap();
        let dir = ResultsDir::new(base.join("results"));
        match write_result_csv_in(&dir, "t.csv", "x") {
            Err(ResultsError::Io { path, .. }) => assert!(path.starts_with(&base)),
            other => panic!("expected typed Io error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&base);
    }

    #[test]
    fn registry_holds_all_twenty_three_artifacts() {
        let r = registry();
        assert_eq!(r.len(), 23);
        for name in [
            "fig1",
            "fig3",
            "table2",
            "table3",
            "table4",
            "table5",
            "fault_sweep",
            "chaos",
            "tick_bench",
            "shard_bench",
            "workload_bench",
            "estimate_bench",
            "scaling",
        ] {
            assert!(r.get(name).is_some(), "missing artifact {name}");
        }
    }
}
