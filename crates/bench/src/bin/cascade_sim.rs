//! Cross-validation of Table 3's cascade rows in *simulation*: a
//! `c`-wide cascade moves `w·c` bits per clock with the header
//! replicated on every slice, so its cycle count equals a single-slice
//! network carrying `ceil(payload/c)` words. The simulated unloaded
//! cycle counts are compared against the Table 4 cycle model
//! (`stages · (dp + vtd) + words + turnaround`).
//!
//! (The cycle-accurate cascade itself — shared randomness, wired-AND —
//! is exercised by `metro_core::CascadeGroup`; at network scale the
//! slices are cycle-lockstep by construction, so the equivalent-payload
//! reduction is exact for fault-free operation.)

use metro_sim::experiment::{unloaded_latency, SweepConfig};
use metro_timing::equations::{stages_32_node_4stage, LatencyModel, T_WIRE_NS};
use metro_topo::multibutterfly::MultibutterflySpec;

fn main() {
    println!("=== Cascade width: simulated cycles vs the analytic model ===\n");
    println!("32-node Figure-1-style network, 20-byte messages, METROJR-class routers\n");
    println!(
        "{:>3} {:>14} {:>18} {:>22}",
        "c", "payload words", "simulated cycles", "t_20,32 @ 25 ns (ns)"
    );
    println!("{}", "-".repeat(62));
    for c in [1usize, 2, 4] {
        // Equivalent-payload reduction: 20 bytes over a w·c-bit logical
        // channel (w = 8 in simulation → 20 words at c = 1).
        let payload_words = 20usize.div_ceil(c);
        let mut cfg = SweepConfig::figure3();
        cfg.spec = MultibutterflySpec::paper32();
        cfg.payload_words = payload_words.saturating_sub(1); // + checksum word
        let cycles = unloaded_latency(&cfg);

        // The analytic projection at the ORBIT clock (25 ns).
        let model = LatencyModel {
            t_clk_ns: 25.0,
            t_io_ns: 10.0,
            t_wire_ns: T_WIRE_NS,
            width: 4,
            cascade: c,
            pipestages: 1,
            header_words: 0,
            stage_digit_bits: stages_32_node_4stage(),
        };
        println!(
            "{c:>3} {:>14} {:>18} {:>22}",
            payload_words,
            cycles,
            model.t20_32_ns()
        );
    }
    println!("\nreading: doubling the cascade roughly halves the serialization cycles");
    println!("while the per-stage cycles are fixed — the same diminishing-returns");
    println!("shape as Table 3's 1250 -> 750 -> 500 ns ORBIT column.");
}
