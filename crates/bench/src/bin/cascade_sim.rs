//! Thin shim over the `cascade_sim` artifact in the metro registry; kept so
//! existing `cargo run --bin cascade_sim` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run cascade_sim`.

fn main() {
    std::process::exit(metro_harness::cli::shim(
        &metro_bench::registry(),
        "cascade_sim",
    ));
}
