//! Regenerates Table 3: METRO implementation examples — `t_clk`,
//! `t_io`, `t_stg`, `t_bit`, stages, and the `t_20,32` figure of merit,
//! computed from the Table 4 equations and checked against the paper's
//! printed cells.

use metro_timing::catalog::table3;
use metro_timing::report::render_table3;

fn main() {
    println!("=== Table 3: METRO implementation examples ===\n");
    let rows = table3();
    print!("{}", render_table3(&rows));

    println!("\nreproduction check (computed vs paper):");
    let mut exact = 0;
    for r in &rows {
        let ok = (r.t20_32_ns() - r.expected_t20_32_ns).abs() < 1e-9
            && (r.t_stg_ns() - r.expected_t_stg_ns).abs() < 1e-9;
        if ok {
            exact += 1;
        }
        println!(
            "  {:<34} t_stg {:>5} ns (paper {:>5}) | t_20,32 {:>6} ns (paper {:>6}) {}",
            format!("{} [{}]", r.name, r.technology),
            r.t_stg_ns(),
            r.expected_t_stg_ns,
            r.t20_32_ns(),
            r.expected_t20_32_ns,
            if ok { "EXACT" } else { "MISMATCH" }
        );
    }
    println!("\n{exact}/{} rows reproduce the paper exactly", rows.len());
}
