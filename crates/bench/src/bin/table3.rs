//! Thin shim over the `table3` artifact in the metro registry; kept so
//! existing `cargo run --bin table3` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run table3`.

fn main() {
    std::process::exit(metro_harness::cli::shim(&metro_bench::registry(), "table3"));
}
