//! Ablation: the multipath (dilated) network of Figure 3 versus a
//! non-dilated network of the same parts, and deterministic versus
//! randomized wiring.
//!
//! Dilation is METRO's source of path redundancy (§2): it should buy
//! both congestion relief under load and survival under router faults.

use metro_sim::experiment::{run_fault_point, run_load_point, SweepConfig};
use metro_topo::multibutterfly::{MultibutterflySpec, StageSpec, WiringStyle};

/// A 64-endpoint network from the same 8x8 parts with dilation 1
/// everywhere: two stages of radix 8, no redundant paths inside the
/// network (only the two endpoint ports).
fn non_dilated() -> MultibutterflySpec {
    MultibutterflySpec {
        endpoints: 64,
        endpoint_ports: 2,
        stages: vec![StageSpec::new(8, 8, 1), StageSpec::new(8, 8, 1)],
        wiring: WiringStyle::Randomized,
        seed: 0x1994,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut base = SweepConfig::figure3();
    if quick {
        base.warmup = 500;
        base.measure = 2_500;
        base.drain = 1_500;
    } else {
        base.measure = 6_000;
    }

    println!("=== Ablation: dilation and wiring style ===\n");
    let variants: [(&str, MultibutterflySpec); 3] = [
        ("dilated 2/2/1 (paper)", MultibutterflySpec::figure3()),
        ("non-dilated radix-8 x2", non_dilated()),
        (
            "dilated, deterministic wiring",
            MultibutterflySpec::figure3().with_wiring(WiringStyle::Deterministic),
        ),
    ];
    for (name, spec) in variants {
        let mut cfg = base.clone();
        cfg.spec = spec;
        println!("{name}:");
        for load in [0.2, 0.5] {
            let p = run_load_point(&cfg, load);
            println!(
                "  load {load:.1}: mean {:>7.1} cyc  p95 {:>6}  retries/msg {:>6.3}  delivered {}",
                p.mean_latency, p.p95_latency, p.retries_per_message, p.delivered
            );
        }
        let f = run_fault_point(&cfg, 0.3, 2, 0);
        println!(
            "  2 dead routers @ load 0.3: mean {:>7.1} cyc  retries/msg {:>6.3}  delivered {}  lost {}\n",
            f.mean_latency, f.retries_per_message, f.delivered, f.abandoned
        );
    }
    println!("expected shape: the dilated network rides through contention and router");
    println!("loss with modest retry counts; the non-dilated network concentrates");
    println!("blocking on its unique internal paths.");
}
