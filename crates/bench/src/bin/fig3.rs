//! Regenerates Figure 3: effective latency versus network loading for
//! randomly distributed 20-byte message traffic on the 3-stage,
//! 64-endpoint, radix-4 network (dilation 2/2/1, two network ports per
//! endpoint, parallelism-limited processors).
//!
//! Pass `--quick` for a shorter run.

use metro_bench::{ascii_curve, load_points_csv, render_load_points, write_result_csv};
use metro_sim::experiment::{load_sweep, unloaded_latency, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = std::env::args().any(|a| a == "--csv");
    let mut cfg = SweepConfig::figure3();
    if quick {
        cfg.warmup = 500;
        cfg.measure = 3_000;
        cfg.drain = 1_000;
    }

    println!("=== Figure 3: aggregate latency vs network loading ===\n");
    println!("network: 64 endpoints, 3 stages of radix-4 routers (8-bit wide),");
    println!("         dilation 2 / 2 / 1, two ports per endpoint");
    println!("traffic: uniformly random destinations, 20-byte messages");
    println!("model:   parallelism-limited (processors stall on outstanding message)\n");

    let base = unloaded_latency(&cfg);
    println!(
        "unloaded message latency: {base} cycles (paper: 28 cycles, injection to ack receipt)\n"
    );

    let loads = [
        0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.80,
        0.90,
    ];
    let points = load_sweep(&cfg, &loads);
    print!("{}", render_load_points(&points));
    if csv {
        match write_result_csv("fig3_load_latency.csv", &load_points_csv(&points)) {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("\ncsv write failed: {e}"),
        }
    }

    println!("\nmean latency vs offered load:");
    print!("{}", ascii_curve(&points, 12));

    // Shape checks the paper's curve exhibits.
    let low = &points[0];
    let sat = points.iter().map(|p| p.accepted).fold(f64::MIN, f64::max);
    println!("\nshape summary:");
    println!(
        "  low-load latency {:.1} cycles ({:.2}x unloaded)",
        low.mean_latency,
        low.mean_latency / base as f64
    );
    println!("  saturation throughput ~{:.2} of injection capacity", sat);
    println!(
        "  latency at highest load {:.0} cycles ({:.1}x unloaded) — the congestion knee",
        points.last().unwrap().mean_latency,
        points.last().unwrap().mean_latency / base as f64
    );
}
