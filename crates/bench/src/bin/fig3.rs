//! Thin shim over the `fig3` artifact in the metro registry; kept so
//! existing `cargo run --bin fig3` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run fig3`.

fn main() {
    std::process::exit(metro_harness::cli::shim(&metro_bench::registry(), "fig3"));
}
