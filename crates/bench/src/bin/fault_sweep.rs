//! Thin shim over the `fault_sweep` artifact in the metro registry; kept so
//! existing `cargo run --bin fault_sweep` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run fault_sweep`.

fn main() {
    std::process::exit(metro_harness::cli::shim(
        &metro_bench::registry(),
        "fault_sweep",
    ));
}
