//! Regenerates the §6.2 claim: "performance degrades robustly in the
//! face of faults" (\[2\], \[3\]). Kills growing numbers of routers and
//! links in the Figure 3 network under moderate load and reports
//! latency, retries, throughput, and message loss (there must be none).
//!
//! Pass `--quick` for a shorter run.

use metro_sim::experiment::{run_fault_point, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = SweepConfig::figure3();
    if quick {
        cfg.warmup = 500;
        cfg.measure = 3_000;
        cfg.drain = 1_500;
    }
    let load = 0.3;

    println!("=== Fault-degradation sweep (Figure 3 network, load {load}) ===\n");
    println!(
        "{:>8} {:>7} {:>11} {:>8} {:>12} {:>10} {:>10} {:>10}",
        "routers", "links", "mean(cyc)", "p95", "retries/msg", "accepted", "delivered", "lost"
    );
    println!("{}", "-".repeat(84));
    let mut baseline = None;
    for (dead_routers, dead_links) in [
        (0, 0),
        (1, 0),
        (2, 0),
        (4, 0),
        (0, 4),
        (0, 8),
        (2, 4),
        (4, 8),
        (6, 12),
    ] {
        let p = run_fault_point(&cfg, load, dead_routers, dead_links);
        if dead_routers == 0 && dead_links == 0 {
            baseline = Some(p.mean_latency);
        }
        println!(
            "{:>8} {:>7} {:>11.1} {:>8} {:>12.3} {:>10.4} {:>10} {:>10}",
            p.dead_routers,
            p.dead_links,
            p.mean_latency,
            p.p95_latency,
            p.retries_per_message,
            p.accepted,
            p.delivered,
            p.abandoned
        );
    }
    if let Some(base) = baseline {
        println!(
            "\nrobust degradation: latency grows gradually from the {base:.1}-cycle baseline;\nstochastic path selection + source retry deliver every message (lost = 0)."
        );
    }
}
