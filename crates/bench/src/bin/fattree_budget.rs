//! Fat-tree construction budgets: how many METRO parts a fat-tree
//! machine needs, per DeHon's construction arithmetic (\[7\]) — the
//! second network class the paper names (§2), with the pin-count
//! tradeoff width cascading addresses (§5.1).

use metro_topo::fattree::{FatTree, FatTreeSpec};

fn main() {
    println!("=== Fat-tree router budgets from METRO parts ===\n");
    for (levels, leaf) in [(4usize, 2usize), (5, 2), (6, 2)] {
        let tree = FatTree::build(&FatTreeSpec::binary(levels, leaf)).expect("valid tree");
        println!(
            "binary fat-tree, {} leaves, leaf capacity {leaf}, bisection {} wires:",
            tree.leaves(),
            tree.bisection()
        );
        println!(
            "  {:<28} {:>10} {:>10} {:>10}",
            "part (i x o)", "4x4", "8x8", "16x16"
        );
        let total4 = tree.total_routers(4, 4);
        let total8 = tree.total_routers(8, 8);
        let total16 = tree.total_routers(16, 16);
        println!(
            "  {:<28} {:>10} {:>10} {:>10}",
            "routers for the whole tree", total4, total8, total16
        );
        // Per-level capacities.
        let caps: Vec<String> = (1..=levels).map(|d| tree.capacity(d).to_string()).collect();
        println!("  channel capacities root->leaf: {}\n", caps.join(" -> "));
    }
    println!("reading: bigger parts cut the router count superlinearly near the");
    println!("root (wide channels concentrate); width cascading lets narrow parts");
    println!("serve the wide upper channels at more pins — the i/o-pin versus");
    println!("datapath-width trade §5.1 motivates.");
}
