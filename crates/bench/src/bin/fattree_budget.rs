//! Thin shim over the `fattree_budget` artifact in the metro registry; kept so
//! existing `cargo run --bin fattree_budget` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run fattree_budget`.

fn main() {
    std::process::exit(metro_harness::cli::shim(
        &metro_bench::registry(),
        "fattree_budget",
    ));
}
