//! Message-size sweep over the Table 3 implementation catalog: where
//! the `t_20,32` snapshot sits in the broader design space, and where
//! implementations cross over (§8: "tradeoffs … between latency,
//! throughput, i/o pins, and cost").

use metro_timing::catalog::table3;
use metro_timing::sweeps::{crossover_bytes, message_size_sweep, serialization_fraction};

fn main() {
    println!("=== Delivery latency vs message size (ns) ===\n");
    let sizes = [4usize, 8, 20, 64, 256];
    let rows = table3();
    let picks = [0usize, 2, 4, 8, 11, 15];
    print!("{:<36}", "implementation");
    for s in sizes {
        print!("{s:>9} B");
    }
    println!();
    println!("{}", "-".repeat(36 + sizes.len() * 10));
    for &k in &picks {
        let r = &rows[k];
        print!("{:<36}", format!("{} [{}]", r.name, r.technology));
        for (_, ns) in message_size_sweep(&r.model(), &sizes) {
            print!("{ns:>10.0}");
        }
        println!();
    }

    println!("\ncrossovers (message size where the wide/slow option starts winning):");
    let wide_slow = rows[2].model(); // ORBIT 4-cascade
    let narrow_fast = rows[4].model(); // std-cell METROJR
    match crossover_bytes(&wide_slow, &narrow_fast, 4096) {
        Some(b) => println!(
            "  ORBIT 4-cascade overtakes std-cell METROJR at {b} bytes (Table 3's\n  20-byte figure of merit sits exactly on this crossover: both 500 ns)"
        ),
        None => println!("  no crossover within 4 KiB"),
    }

    println!("\nserialization fraction of t_20,32 (short-haul regime check, §2):");
    for (name, frac) in serialization_fraction(&rows) {
        if frac > 0.0 {
            println!("  {name:<44} {:>5.1}%", frac * 100.0);
        }
    }
}
