//! Thin shim over the `message_sizes` artifact in the metro registry; kept so
//! existing `cargo run --bin message_sizes` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run message_sizes`.

fn main() {
    std::process::exit(metro_harness::cli::shim(
        &metro_bench::registry(),
        "message_sizes",
    ));
}
