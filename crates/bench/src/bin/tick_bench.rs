//! Thin shim over the `tick_bench` artifact in the metro registry; kept so
//! existing `cargo run --bin tick_bench` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run tick_bench`.

fn main() {
    std::process::exit(metro_harness::cli::shim(
        &metro_bench::registry(),
        "tick_bench",
    ));
}
