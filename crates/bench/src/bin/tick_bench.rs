//! Tick-engine throughput: flat double-buffered arenas vs. the
//! reference nested-`Vec` engine on the fixed Figure 3 configuration
//! (64-endpoint three-stage multibutterfly, 8-bit channels, `dp = 1`,
//! fast reclamation).
//!
//! Both engines run the identical sustained workload — every endpoint
//! re-offers an 8-word message each time its queue drains, so the
//! fabric stays loaded for the whole measurement window. The measured
//! quantity is simulator cycles per wall-clock second; results (and the
//! flat/reference speedup) are written to `BENCH_tick.json`.
//!
//! Run with: `cargo run --release -p metro-bench --bin tick_bench`

use metro_sim::{EngineKind, NetworkSim, SimConfig};
use metro_topo::multibutterfly::MultibutterflySpec;
use std::time::Instant;

/// Cycles discarded to reach a loaded steady state.
const WARMUP_CYCLES: u64 = 20_000;
/// Cycles in the measured window.
const MEASURED_CYCLES: u64 = 100_000;
/// Offered payload per message, in words.
const PAYLOAD_WORDS: usize = 8;
/// Cycles between workload refresh sweeps.
const OFFER_PERIOD: u64 = 32;

fn build(kind: EngineKind) -> NetworkSim {
    let spec = MultibutterflySpec::figure3();
    let config = SimConfig {
        engine: kind,
        ..SimConfig::default()
    };
    let mut sim = NetworkSim::new(&spec, &config).expect("Figure 3 spec is valid");
    // Decimate trace snapshots identically for both engines so the
    // comparison isolates the tick engine itself.
    sim.set_trace_interval(1_024);
    sim
}

/// Keeps every endpoint's NIC queue non-empty: one fresh message per
/// endpoint every `OFFER_PERIOD` cycles, destinations striding through
/// the address space so the load spreads across the fabric.
fn offer_load(sim: &mut NetworkSim, round: u64) {
    let n = sim.topology().endpoints();
    let payload: Vec<u16> = (0..PAYLOAD_WORDS as u16).collect();
    for src in 0..n {
        let dest = (src + 1 + (round as usize * 7) % (n - 1)) % n;
        sim.send(src, dest, &payload);
    }
}

fn run(kind: EngineKind) -> (f64, usize) {
    let mut sim = build(kind);
    let mut round = 0u64;
    for now in 0..WARMUP_CYCLES {
        if now % OFFER_PERIOD == 0 {
            offer_load(&mut sim, round);
            round += 1;
        }
        sim.tick();
    }
    sim.drain_outcomes();
    let start = Instant::now();
    for now in 0..MEASURED_CYCLES {
        if now % OFFER_PERIOD == 0 {
            offer_load(&mut sim, round);
            round += 1;
        }
        sim.tick();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let delivered = sim.drain_outcomes().len();
    (MEASURED_CYCLES as f64 / elapsed, delivered)
}

fn main() {
    println!("=== Tick-engine throughput: Figure 3 network (64 endpoints, 3 stages) ===\n");
    println!(
        "warm-up {WARMUP_CYCLES} cycles, measured {MEASURED_CYCLES} cycles, \
         {PAYLOAD_WORDS}-word messages re-offered every {OFFER_PERIOD} cycles\n"
    );

    let (flat_rate, flat_done) = run(EngineKind::Flat);
    println!("flat      : {flat_rate:>12.0} cycles/s  ({flat_done} messages completed)");
    let (ref_rate, ref_done) = run(EngineKind::Reference);
    println!("reference : {ref_rate:>12.0} cycles/s  ({ref_done} messages completed)");

    let speedup = flat_rate / ref_rate;
    println!("\nspeedup   : {speedup:.2}x");
    assert_eq!(
        flat_done, ref_done,
        "engines completed different message counts under the identical workload"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"tick_engine_throughput\",\n  \"topology\": \"figure3\",\n  \
         \"endpoints\": 64,\n  \"warmup_cycles\": {WARMUP_CYCLES},\n  \
         \"measured_cycles\": {MEASURED_CYCLES},\n  \"payload_words\": {PAYLOAD_WORDS},\n  \
         \"offer_period\": {OFFER_PERIOD},\n  \
         \"flat_cycles_per_sec\": {flat_rate:.1},\n  \
         \"reference_cycles_per_sec\": {ref_rate:.1},\n  \
         \"messages_completed\": {flat_done},\n  \"speedup\": {speedup:.3}\n}}\n"
    );
    std::fs::write("BENCH_tick.json", &json).expect("write BENCH_tick.json");
    println!("\nwrote BENCH_tick.json");
}
