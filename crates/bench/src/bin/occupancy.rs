//! Thin shim over the `occupancy` artifact in the metro registry; kept so
//! existing `cargo run --bin occupancy` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run occupancy`.

fn main() {
    std::process::exit(metro_harness::cli::shim(
        &metro_bench::registry(),
        "occupancy",
    ));
}
