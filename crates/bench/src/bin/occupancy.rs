//! Router occupancy analysis: how evenly the stochastic selection
//! spreads connections over the fabric, under uniform and hotspot
//! traffic — §4's "random selection … frees the source from knowing the
//! actual details of the redundant paths", made visible.

use metro_core::RandomSource;
use metro_sim::traffic::{LoadGenerator, TrafficPattern};
use metro_sim::{NetworkSim, SimConfig};
use metro_topo::multibutterfly::MultibutterflySpec;

fn run(pattern: &TrafficPattern, cycles: u64) -> NetworkSim {
    let mut sim = NetworkSim::new(&MultibutterflySpec::figure3(), &SimConfig::default()).unwrap();
    let n = sim.topology().endpoints();
    let stream_words = sim.stream_for(0, &[0; 19]).len();
    let mut pattern_rng = RandomSource::new(0xACC);
    let mut gens: Vec<LoadGenerator> = (0..n)
        .map(|e| LoadGenerator::new(0.3, stream_words, 0x0CC + e as u64))
        .collect();
    let payload: Vec<u16> = (0..19).map(|k| k as u16).collect();
    for _ in 0..cycles {
        for (e, g) in gens.iter_mut().enumerate() {
            if g.arrival() {
                let dest = pattern.destination(e, n, &mut pattern_rng);
                sim.send(e, dest, &payload);
            }
        }
        sim.tick();
    }
    sim
}

fn report(label: &str, sim: &NetworkSim) {
    println!("{label}:");
    for s in 0..sim.topology().stages() {
        let grants: Vec<usize> = (0..sim.topology().routers_in_stage(s))
            .map(|r| sim.router(s, r).stats().grants)
            .collect();
        let total: usize = grants.iter().sum();
        let min = grants.iter().min().copied().unwrap_or(0);
        let max = grants.iter().max().copied().unwrap_or(0);
        let mean = total as f64 / grants.len() as f64;
        let blocks: usize = (0..grants.len())
            .map(|r| sim.router(s, r).stats().blocks)
            .sum();
        println!(
            "  stage {s}: grants/router min {min:>5} mean {mean:>8.1} max {max:>5}  (imbalance {:.2}x, {blocks} blocks)",
            if min > 0 { max as f64 / min as f64 } else { f64::INFINITY },
        );
    }
    println!();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cycles = if quick { 3_000 } else { 8_000 };
    println!("=== Router occupancy under load 0.3, {cycles} cycles ===\n");

    let uniform = run(&TrafficPattern::Uniform, cycles);
    report("uniform random traffic", &uniform);

    let hotspot = run(
        &TrafficPattern::Hotspot {
            target: 0,
            percent: 30,
        },
        cycles,
    );
    report("30% hotspot on endpoint 0", &hotspot);

    println!("reading: under uniform traffic the stochastic selection keeps the");
    println!("grant imbalance within ~1.5x at every stage with zero coordination.");
    println!("The hotspot leaves stage 0 balanced (retries spread over all entry");
    println!("paths) but skews the later stages by an order of magnitude: the");
    println!("victim's destination subtree — rooted where the groups first");
    println!("single out endpoint 0 — absorbs the whole concentration, and the");
    println!("blocks pile up at stage 0 where circuits fail to form.");
}
