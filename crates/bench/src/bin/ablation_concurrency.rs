//! Ablation: one transmit engine versus two.
//!
//! The Figure 3 caption restricts each endpoint "to only use one of its
//! entering network ports at a time" — the parallelism-limited model.
//! The hardware has two entering ports; this experiment measures what
//! the restriction costs by letting a second transmit engine drive the
//! other port.

use metro_sim::experiment::{run_load_point, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = SweepConfig::figure3();
    if quick {
        cfg.warmup = 500;
        cfg.measure = 2_500;
        cfg.drain = 1_500;
    } else {
        cfg.measure = 6_000;
    }

    println!("=== Ablation: transmit engines per endpoint ===\n");
    println!(
        "{:>8} {:>6} {:>11} {:>8} {:>12} {:>10}",
        "engines", "load", "mean(cyc)", "p95", "retries/msg", "delivered"
    );
    println!("{}", "-".repeat(62));
    for engines in [1usize, 2] {
        cfg.sim.endpoint.max_concurrent = engines;
        for load in [0.3, 0.6, 0.9] {
            let p = run_load_point(&cfg, load);
            println!(
                "{engines:>8} {load:>6.1} {:>11.1} {:>8} {:>12.3} {:>10}",
                p.mean_latency, p.p95_latency, p.retries_per_message, p.delivered
            );
        }
    }
    println!("\nexpected shape: identical until a single engine saturates (~0.55 of");
    println!("capacity); past that, the second engine converts queueing delay into");
    println!("delivered throughput — at the cost of more in-network contention.");
}
