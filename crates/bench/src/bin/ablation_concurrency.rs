//! Thin shim over the `ablation_concurrency` artifact in the metro registry; kept so
//! existing `cargo run --bin ablation_concurrency` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run ablation_concurrency`.

fn main() {
    std::process::exit(metro_harness::cli::shim(
        &metro_bench::registry(),
        "ablation_concurrency",
    ));
}
