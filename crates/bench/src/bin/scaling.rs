//! Scaling study: unloaded latency and saturation throughput as the
//! network grows from 16 to 256 endpoints, holding the router
//! technology fixed — the "logarithmic number of routing components"
//! claim of §2 made quantitative.

use metro_sim::experiment::{run_load_point, unloaded_latency, SweepConfig};
use metro_topo::multibutterfly::{Multibutterfly, MultibutterflySpec, StageSpec, WiringStyle};

/// A 256-endpoint, 4-stage radix-4 network from the same parts as
/// Figure 3 (dilation 2/2/2/1).
fn net256() -> MultibutterflySpec {
    MultibutterflySpec {
        endpoints: 256,
        endpoint_ports: 2,
        stages: vec![
            StageSpec::new(8, 8, 2),
            StageSpec::new(8, 8, 2),
            StageSpec::new(8, 8, 2),
            StageSpec::new(4, 4, 1),
        ],
        wiring: WiringStyle::Randomized,
        seed: 0x256,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("=== Scaling: 16 -> 256 endpoints, fixed router technology ===\n");
    println!(
        "{:>10} {:>7} {:>8} {:>10} {:>12} {:>14}",
        "endpoints", "stages", "routers", "unloaded", "mean @ 0.4", "retries @ 0.4"
    );
    println!("{}", "-".repeat(68));
    for (spec, label) in [
        (MultibutterflySpec::figure1(), 16usize),
        (MultibutterflySpec::paper32(), 32),
        (MultibutterflySpec::figure3(), 64),
        (net256(), 256),
    ] {
        let net = Multibutterfly::build(&spec).expect("valid spec");
        let mut cfg = SweepConfig::figure3();
        cfg.spec = spec;
        if quick || label >= 256 {
            cfg.warmup = 500;
            cfg.measure = 2_500;
            cfg.drain = 1_500;
        }
        let base = unloaded_latency(&cfg);
        let p = run_load_point(&cfg, 0.4);
        println!(
            "{:>10} {:>7} {:>8} {:>10} {:>12.1} {:>14.3}",
            label,
            net.stages(),
            net.total_routers(),
            base,
            p.mean_latency,
            p.retries_per_message
        );
    }
    println!("\nreading: unloaded latency grows by ~1 cycle per extra stage plus the");
    println!("longer headers — logarithmic in machine size, as circuit-switched");
    println!("multistage routing promises; router count grows as N·log(N)/radix.");
}
