//! Thin shim over the `scaling` artifact in the metro registry; kept so
//! existing `cargo run --bin scaling` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run scaling`.

fn main() {
    std::process::exit(metro_harness::cli::shim(
        &metro_bench::registry(),
        "scaling",
    ));
}
