//! Regenerates Table 5: contemporary routing technologies and their
//! `t_20,32` estimates, alongside the METRO rows they are compared with
//! in §7.

use metro_timing::catalog::table3;
use metro_timing::contemporary::{routers_slower_than, table5};
use metro_timing::report::render_table5;

fn main() {
    println!("=== Table 5: contemporary routing technologies ===\n");
    print!("{}", render_table5(&table5()));

    println!("\npublished vs reconstructed t_20,32:");
    for r in table5() {
        let (lo, hi) = r.estimate_t20_32_ns();
        let (plo, phi) = r.published_t20_32_ns;
        println!(
            "  {:<18} published {:>6.0} -> {:>6.0} ns | reconstructed {:>7.0} -> {:>7.0} ns",
            r.name, plo, phi, lo, hi
        );
    }

    println!("\nparagraph 7 comparison (who METRO beats):");
    for metro in [
        ("METROJR-ORBIT gate array", 1250.0),
        ("METROJR 0.8u std cell", 500.0),
        ("METRO 4-cascade full custom", 44.0),
    ] {
        let slower = routers_slower_than(metro.1);
        println!(
            "  {} ({} ns): slower contemporaries = {:?}",
            metro.0, metro.1, slower
        );
    }

    let orbit = &table3()[0];
    println!(
        "\n'even the minimal gate-array implementation of METRO compares favorably\n with the existing field': METROJR-ORBIT t_20,32 = {} ns",
        orbit.t20_32_ns()
    );
}
