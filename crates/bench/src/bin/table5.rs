//! Thin shim over the `table5` artifact in the metro registry; kept so
//! existing `cargo run --bin table5` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run table5`.

fn main() {
    std::process::exit(metro_harness::cli::shim(&metro_bench::registry(), "table5"));
}
