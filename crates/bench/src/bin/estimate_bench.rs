//! Thin shim over the `estimate_bench` artifact in the metro registry;
//! matches its sibling benches. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run estimate_bench`.

fn main() {
    std::process::exit(metro_harness::cli::shim(
        &metro_bench::registry(),
        "estimate_bench",
    ));
}
