//! Thin shim over the `ablation_selection` artifact in the metro registry; kept so
//! existing `cargo run --bin ablation_selection` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run ablation_selection`.

fn main() {
    std::process::exit(metro_harness::cli::shim(
        &metro_bench::registry(),
        "ablation_selection",
    ));
}
