//! Ablation: stochastic output selection (the METRO architecture)
//! versus round-robin and fixed-priority selection, under load and
//! under faults.
//!
//! §4 argues random selection is "the key to making the protocol robust
//! against dynamic faults" while needing no state; this experiment
//! quantifies what the alternatives give up.

use metro_core::SelectionPolicy;
use metro_sim::experiment::{run_fault_point, run_load_point, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = SweepConfig::figure3();
    if quick {
        cfg.warmup = 500;
        cfg.measure = 2_500;
        cfg.drain = 1_500;
    } else {
        cfg.measure = 6_000;
    }

    println!("=== Ablation: backward-port selection policy ===\n");
    for policy in [
        SelectionPolicy::Random,
        SelectionPolicy::RoundRobin,
        SelectionPolicy::Fixed,
    ] {
        cfg.sim.selection = policy;
        println!("policy: {policy:?}");
        for load in [0.2, 0.5] {
            let p = run_load_point(&cfg, load);
            println!(
                "  load {load:.1}: mean {:>7.1} cyc  p95 {:>6}  retries/msg {:>6.3}  delivered {}",
                p.mean_latency, p.p95_latency, p.retries_per_message, p.delivered
            );
        }
        // Under faults the difference matters most: fixed selection
        // retries down the same path.
        let f = run_fault_point(&cfg, 0.3, 3, 6);
        println!(
            "  faulty (3 routers + 6 links): mean {:>7.1} cyc  retries/msg {:>6.3}  delivered {}  lost {}\n",
            f.mean_latency, f.retries_per_message, f.delivered, f.abandoned
        );
    }
    println!("expected shape: random ≈ round-robin when healthy; under faults and");
    println!("contention, fixed priority concentrates traffic, raising retries/latency.");
}
