//! Regenerates Table 2: the configuration options, their instance
//! counts, bit budgets, and the resulting scan-register width for
//! representative METRO parts.

use metro_core::{ArchParams, RouterConfig};
use metro_scan::registers::{dilation_bits, encode_config, vtd_bits};

fn main() {
    println!("=== Table 2: METRO configuration parameters ===\n");
    println!(
        "{:<24} {:<12} {:<26}",
        "Option", "Instances", "Bits per instance"
    );
    println!("{}", "-".repeat(64));
    println!("{:<24} {:<12} {:<26}", "Port On/Off", "i + o", "1/port");
    println!(
        "{:<24} {:<12} {:<26}",
        "Off Port Drive Output", "i + o", "1/port"
    );
    println!(
        "{:<24} {:<12} {:<26}",
        "Turn Delay", "i + o", "ceil(log2(max_vtd))/port"
    );
    println!("{:<24} {:<12} {:<26}", "Fast Reclaim", "i + o", "1/port");
    println!(
        "{:<24} {:<12} {:<26}",
        "Swallow", "i", "1/forward port (hw = 0 only)"
    );
    println!(
        "{:<24} {:<12} {:<26}",
        "Dilation (d)", "1", "log2(max_d)/router"
    );

    println!("\nscan-register widths for concrete parts:");
    for (name, params) in [
        ("METROJR (i=o=w=4)", ArchParams::metrojr()),
        ("RN1-class (i=o=w=8)", ArchParams::rn1()),
        ("METRO-8 (i=o=8, w=4)", ArchParams::metro8()),
    ] {
        let cfg = RouterConfig::new(&params).build().unwrap();
        let image = encode_config(&cfg, &params);
        println!(
            "  {:<22} vtd bits {} | dilation bits {} | total config register: {} bits",
            name,
            vtd_bits(params.max_turn_delay()),
            dilation_bits(params.max_dilation()),
            image.len()
        );
        assert_eq!(image.len(), cfg.scan_bits(&params));
    }
}
