//! Thin shim over the `table2` artifact in the metro registry; kept so
//! existing `cargo run --bin table2` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run table2`.

fn main() {
    std::process::exit(metro_harness::cli::shim(&metro_bench::registry(), "table2"));
}
