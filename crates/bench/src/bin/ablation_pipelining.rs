//! Ablation: the pipelining options of §5.1 — internal pipestages
//! (`dp`), pipelined connection setup (`hw`), and wire pipeline depth
//! (variable turn delay) — measured in simulation cycles and projected
//! to nanoseconds with the Table 4 model.

use metro_sim::experiment::{unloaded_latency, SweepConfig};
use metro_timing::equations::{stages_32_node_4stage, LatencyModel, T_WIRE_NS};

fn main() {
    println!("=== Ablation: pipelining options ===\n");
    println!("simulated unloaded latency (cycles), Figure 3 network:");
    println!(
        "{:>6} {:>6} {:>11} {:>16}",
        "dp", "hw", "wire delay", "latency (cycles)"
    );
    println!("{}", "-".repeat(44));
    for (dp, hw, wire) in [
        (1, 0, 0),
        (2, 0, 0),
        (3, 0, 0),
        (1, 1, 0),
        (1, 2, 0),
        (1, 0, 1),
        (1, 0, 2),
        (2, 1, 1),
    ] {
        let mut cfg = SweepConfig::figure3();
        cfg.sim.pipestages = dp;
        cfg.sim.header_words = hw;
        cfg.sim.wire_delay = wire;
        let lat = unloaded_latency(&cfg);
        println!("{dp:>6} {hw:>6} {wire:>11} {lat:>16}");
    }

    println!("\nanalytic projection (Table 4, 0.8µ full custom, 32-node network):");
    println!(
        "{:>6} {:>6} {:>9} {:>9} {:>12}",
        "dp", "hw", "t_clk", "t_stg", "t_20,32 (ns)"
    );
    println!("{}", "-".repeat(46));
    for (dp, hw, t_clk) in [(1, 0, 5.0), (2, 0, 2.0), (1, 1, 2.0), (1, 2, 2.0)] {
        let m = LatencyModel {
            t_clk_ns: t_clk,
            t_io_ns: 3.0,
            t_wire_ns: T_WIRE_NS,
            width: 4,
            cascade: 1,
            pipestages: dp,
            header_words: hw,
            stage_digit_bits: stages_32_node_4stage(),
        };
        println!(
            "{dp:>6} {hw:>6} {:>9} {:>9} {:>12}",
            t_clk,
            m.t_stg_ns(),
            m.t20_32_ns()
        );
    }
    println!("\nreading: deeper pipelines cost cycles but buy clock rate; pipelined");
    println!("connection setup (hw > 0) trades header words for a shorter critical");
    println!("path — the 124 ns (dp=2) vs 120 ns (hw=1) comparison of Table 3.");
}
