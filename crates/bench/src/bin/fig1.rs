//! Regenerates Figure 1: the 16×16 multipath network built from 4×2
//! (inputs × radix) dilation-2 routers and 4×4 dilation-1 routers, its
//! path multiplicity, and the fault-tolerance property its caption and
//! §5.1 claim.

use metro_topo::analysis::{path_profile, single_router_tolerance};
use metro_topo::dot::to_dot;
use metro_topo::fault::FaultSet;
use metro_topo::multibutterfly::{Multibutterfly, MultibutterflySpec};
use metro_topo::paths::{count_paths, enumerate_paths};

fn main() {
    let spec = MultibutterflySpec::figure1();
    let net = Multibutterfly::build(&spec).expect("figure 1 network");
    if std::env::args().any(|a| a == "--dot") {
        let dot = to_dot(&net, &FaultSet::new());
        let dir = std::path::Path::new("results");
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join("fig1.dot");
        std::fs::write(&path, dot).expect("write dot");
        println!("wrote {} (render with `dot -Tsvg`)", path.display());
    }

    println!("=== Figure 1: 16x16 multipath network ===\n");
    println!("endpoints:        {}", net.endpoints());
    println!("ports/endpoint:   {}", net.endpoint_ports());
    for s in 0..net.stages() {
        let st = net.stage_spec(s);
        println!(
            "stage {s}: {:>2} routers of {}x{} (inputs x radix), dilation {}",
            net.routers_in_stage(s),
            st.forward_ports,
            st.radix(),
            st.dilation
        );
    }

    // The caption highlights endpoints 6 -> 16 (1-indexed); 5 -> 15 here.
    let faults = FaultSet::new();
    let highlighted = count_paths(&net, 5, 15, &faults);
    println!("\nwire-level paths endpoint 6 -> endpoint 16 (paper numbering): {highlighted}");
    let routes = enumerate_paths(&net, 5, 15, &faults, 32);
    println!("router-level routes ({}):", routes.len());
    for r in &routes {
        let hops: Vec<String> = r
            .iter()
            .enumerate()
            .map(|(s, idx)| format!("r{s}.{idx}"))
            .collect();
        println!("  {}", hops.join(" -> "));
    }

    let profile = path_profile(&net, &faults);
    println!(
        "\npath profile over all pairs: min {} / max {} (total {})",
        profile.min_paths, profile.max_paths, profile.total_paths
    );

    // §5.1: the dilation-1 final stage tolerates any single router loss.
    let tolerance = single_router_tolerance(&net);
    println!("\nsingle-router-loss tolerance by stage:");
    for (s, ok) in tolerance.iter().enumerate() {
        println!(
            "  stage {s}: {}",
            if *ok {
                "every single-router loss leaves all endpoints connected"
            } else {
                "some single-router loss isolates an endpoint"
            }
        );
    }

    println!("\npaper claim check:");
    println!(
        "  'many paths between each pair of network endpoints'     -> min {} paths",
        profile.min_paths
    );
    println!(
        "  'tolerate the complete loss of any router in the final\n   stage without isolating any endpoints'                 -> {}",
        if tolerance[2] { "holds" } else { "VIOLATED" }
    );
}
