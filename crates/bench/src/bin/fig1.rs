//! Thin shim over the `fig1` artifact in the metro registry; kept so
//! existing `cargo run --bin fig1` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run fig1`.

fn main() {
    std::process::exit(metro_harness::cli::shim(&metro_bench::registry(), "fig1"));
}
