//! Regenerates Table 4: the latency equations, worked through for the
//! METROJR-ORBIT prototype so every intermediate quantity is visible.

use metro_timing::equations::{stages_32_node_4stage, LatencyModel, MESSAGE_BITS, T_WIRE_NS};

fn main() {
    println!("=== Table 4: latency equations (worked example: METROJR-ORBIT) ===\n");
    let m = LatencyModel {
        t_clk_ns: 25.0,
        t_io_ns: 10.0,
        t_wire_ns: T_WIRE_NS,
        width: 4,
        cascade: 1,
        pipestages: 1,
        header_words: 0,
        stage_digit_bits: stages_32_node_4stage(),
    };
    println!(
        "t_wire     = {} ns                      (assumed wire delay)",
        m.t_wire_ns
    );
    println!(
        "vtd        = ceil((t_io + t_wire)/t_clk) = ceil(({} + {})/{}) = {} cycles",
        m.t_io_ns,
        m.t_wire_ns,
        m.t_clk_ns,
        m.vtd()
    );
    println!(
        "t_on_chip  = t_clk * dp = {} * {} = {} ns",
        m.t_clk_ns,
        m.pipestages,
        m.t_on_chip_ns()
    );
    println!(
        "t_stg      = t_on_chip + vtd*t_clk = {} + {}*{} = {} ns",
        m.t_on_chip_ns(),
        m.vtd(),
        m.t_clk_ns,
        m.t_stg_ns()
    );
    let digit_sum: usize = m.stage_digit_bits.iter().sum();
    println!(
        "hbits      = ceil((sum log2 r_s)/w)*w*c = ceil({digit_sum}/{})*{}*{} = {} bits  (hw = 0)",
        m.width,
        m.width,
        m.cascade,
        m.header_bits()
    );
    println!(
        "t_bit      = t_clk/(w*c) = {}/{} = {} ns/bit",
        m.t_clk_ns,
        m.width * m.cascade,
        m.t_bit_ns()
    );
    println!(
        "t_20,32    = stages*t_stg + (20*8 + hbits)*t_bit = {}*{} + ({} + {})*{} = {} ns",
        m.stages(),
        m.t_stg_ns(),
        MESSAGE_BITS,
        m.header_bits(),
        m.t_bit_ns(),
        m.t20_32_ns()
    );

    println!("\nand with pipelined connection setup (hw = 1, 2 ns full-custom clock):");
    let hw1 = LatencyModel {
        t_clk_ns: 2.0,
        t_io_ns: 3.0,
        header_words: 1,
        ..m.clone()
    };
    println!(
        "vtd = {}, t_stg = {} ns, hbits = hw*w*c*stages = {} bits, t_20,32 = {} ns",
        hw1.vtd(),
        hw1.t_stg_ns(),
        hw1.header_bits(),
        hw1.t20_32_ns()
    );
}
