//! Thin shim over the `table4` artifact in the metro registry; kept so
//! existing `cargo run --bin table4` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run table4`.

fn main() {
    std::process::exit(metro_harness::cli::shim(&metro_bench::registry(), "table4"));
}
