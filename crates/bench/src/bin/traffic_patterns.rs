//! Traffic-pattern study: the Figure 3 network under the standard
//! multistage-network adversaries — uniform random (the paper's
//! workload), hotspot concentration, matrix transpose, and bit
//! reversal.
//!
//! Multipath dilation plus randomized wiring is exactly the machinery
//! (\[15\], \[16\]) that keeps structured permutations from collapsing onto
//! a few internal links; this study quantifies it.

use metro_sim::experiment::{run_load_point, SweepConfig};
use metro_sim::TrafficPattern;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = SweepConfig::figure3();
    if quick {
        cfg.warmup = 500;
        cfg.measure = 2_500;
        cfg.drain = 1_500;
    } else {
        cfg.measure = 6_000;
    }

    println!("=== Traffic patterns on the Figure 3 network ===\n");
    println!(
        "{:<14} {:>6} {:>11} {:>8} {:>12} {:>10}",
        "pattern", "load", "mean(cyc)", "p95", "retries/msg", "delivered"
    );
    println!("{}", "-".repeat(66));
    let patterns: [(&str, TrafficPattern); 4] = [
        ("uniform", TrafficPattern::Uniform),
        (
            "hotspot 20%",
            TrafficPattern::Hotspot {
                target: 0,
                percent: 20,
            },
        ),
        ("transpose", TrafficPattern::Transpose),
        ("bit-reversal", TrafficPattern::BitReversal),
    ];
    for (name, pattern) in patterns {
        cfg.pattern = pattern;
        for load in [0.2, 0.4] {
            let p = run_load_point(&cfg, load);
            println!(
                "{name:<14} {load:>6.1} {:>11.1} {:>8} {:>12.3} {:>10}",
                p.mean_latency, p.p95_latency, p.retries_per_message, p.delivered
            );
        }
    }
    println!("\nreading: permutations (transpose, bit-reversal) beat even uniform");
    println!("traffic — each destination hears from exactly one source, so the only");
    println!("contention is inside the multipath fabric, which the dilation absorbs.");
    println!("The hotspot serializes at the victim's delivery ports — an endpoint");
    println!("limit no network fixes (visible as ~10 retries/msg at the hot node).");
}
