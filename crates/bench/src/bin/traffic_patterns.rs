//! Thin shim over the `traffic_patterns` artifact in the metro registry; kept so
//! existing `cargo run --bin traffic_patterns` invocations keep working. Prefer
//! `cargo run --release -p metro-bench --bin metro -- run traffic_patterns`.

fn main() {
    std::process::exit(metro_harness::cli::shim(
        &metro_bench::registry(),
        "traffic_patterns",
    ));
}
