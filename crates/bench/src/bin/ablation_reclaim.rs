//! Ablation: fast path reclamation (BCB teardown) versus detailed
//! turn-time replies on blocked connections (paper §5.1, "Path
//! Reclamation — Fast and Detailed").
//!
//! Fast reclamation releases blocked resources immediately; detailed
//! mode holds the path until the source turns the connection, buying
//! precise blocked-stage information at the cost of occupancy.

use metro_sim::experiment::{run_load_point, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = SweepConfig::figure3();
    if quick {
        cfg.warmup = 500;
        cfg.measure = 2_500;
        cfg.drain = 1_500;
    } else {
        cfg.measure = 6_000;
    }

    println!("=== Ablation: fast vs detailed path reclamation ===\n");
    println!(
        "{:>9} {:>6} {:>11} {:>8} {:>12} {:>10}",
        "mode", "load", "mean(cyc)", "p95", "retries/msg", "delivered"
    );
    println!("{}", "-".repeat(62));
    for fast in [true, false] {
        cfg.sim.fast_reclaim = fast;
        for load in [0.2, 0.4, 0.6] {
            let p = run_load_point(&cfg, load);
            println!(
                "{:>9} {:>6.1} {:>11.1} {:>8} {:>12.3} {:>10}",
                if fast { "fast" } else { "detailed" },
                load,
                p.mean_latency,
                p.p95_latency,
                p.retries_per_message,
                p.delivered
            );
        }
    }
    println!("\nexpected shape: identical at low load (nothing blocks); as load grows,");
    println!("fast reclamation frees blocked paths sooner — lower latency and higher");
    println!("delivered throughput near saturation (\"Fast path reclamation allows");
    println!("stochastic search for non-faulty, uncongested paths to proceed rapidly\").");
}
