//! The unified experiment CLI: `metro list`, `metro run <artifact>...`,
//! `metro run --all --quick --json --jobs N`, `metro scenario
//! run|dump|validate|fuzz` for declarative scenario files (with
//! `--checkpoint-every`/`--checkpoint-dir` for crash-safe periodic
//! snapshots), `metro resume <ckpt>` to continue an interrupted
//! checkpointed run bit-identically, `metro chaos` for fault-storm
//! campaigns against the self-healing loop, and `metro report` to
//! render telemetry sidecars as per-stage tables. Every paper artifact
//! in the registry is reachable from here, and every run writes
//! `results/<artifact>.json` plus a `results/manifest.json` record
//! (with the scenario and telemetry hashes when the artifact emits
//! them).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("scenario") => std::process::exit(metro_bench::scenario_cli::main(&args[1..])),
        Some("resume") => std::process::exit(metro_bench::scenario_cli::resume_main(&args[1..])),
        Some("chaos") => std::process::exit(metro_bench::chaos_cli::main(&args[1..])),
        Some("report") => std::process::exit(metro_bench::report_cli::main(&args[1..])),
        _ => std::process::exit(metro_harness::cli::main_with(&metro_bench::registry())),
    }
}
