//! The unified experiment CLI: `metro list`, `metro run <artifact>...`,
//! `metro run --all --quick --json --jobs N`. Every paper artifact in
//! the registry is reachable from here, and every run writes
//! `results/<artifact>.json` plus a `results/manifest.json` record.

fn main() {
    std::process::exit(metro_harness::cli::main_with(&metro_bench::registry()));
}
