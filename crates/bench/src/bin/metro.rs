//! The unified experiment CLI: `metro list`, `metro run <artifact>...`,
//! `metro run --all --quick --json --jobs N`, and `metro scenario
//! run|dump|validate|fuzz` for declarative scenario files. Every paper
//! artifact in the registry is reachable from here, and every run
//! writes `results/<artifact>.json` plus a `results/manifest.json`
//! record (with the scenario hash when the artifact emits one).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("scenario") {
        std::process::exit(metro_bench::scenario_cli::main(&args[1..]));
    }
    std::process::exit(metro_harness::cli::main_with(&metro_bench::registry()));
}
