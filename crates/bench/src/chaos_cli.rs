//! The `metro chaos` verb: randomized fault-storm campaigns against the
//! self-healing loop, from the command line.
//!
//! ```text
//! metro chaos                          # 4 campaigns, both engines
//! metro chaos --campaigns 12 --seed 7  # a longer, reseeded sweep
//! metro chaos --engine flat            # one engine only (faster smoke)
//! ```
//!
//! Each campaign injects link faults mid-run, drives traffic until the
//! evidence-driven diagnosis masks the faulted ports, optionally
//! repairs the links, and probes recovery — failing loudly on any
//! violated invariant (silent loss/duplication, unmasked fault, slow
//! recovery, engine divergence). Results land in `results/chaos.json`
//! with a manifest record, the same trail `metro run` leaves.

use metro_harness::log;
use metro_harness::results::{git_describe, unix_time_now, ResultsDir, RunRecord};
use metro_harness::Json;
use metro_sim::chaos::{
    run_campaign, run_campaign_paired, run_campaign_shard_paired, ChaosCampaign, ChaosReport,
};
use metro_sim::network::EngineKind;
use metro_topo::multibutterfly::MultibutterflySpec;
use std::time::Instant;

fn usage() -> String {
    "usage: metro chaos [--campaigns N] [--seed S] [--engine flat|reference|both]\n\
     \x20                [--shards N]\n\
     \n\
     Runs N seeded fault-storm campaigns on the Figure 1 network with\n\
     self-healing enabled, checking hard invariants: no silent message\n\
     loss or duplication, every injected fault masked from reply\n\
     evidence alone, bounded post-masking latency recovery, and (with\n\
     --engine both, the default) bit-identical behaviour on the Flat\n\
     and Reference tick engines. With --shards N (N > 1), every\n\
     campaign additionally replays on the sharded Flat engine and must\n\
     be bit-identical to the single-threaded run, telemetry included.\n\
     The analytic estimator is not cycle-accurate and is rejected.\n"
        .to_string()
}

/// Which engines a chaos run exercises: one cycle-accurate engine, or
/// the paired flat+reference divergence audit (the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineChoice {
    One(EngineKind),
    Both,
}

/// Entry point for `metro chaos <args…>`; returns the process exit
/// code.
#[must_use]
pub fn main(args: &[String]) -> i32 {
    let mut campaigns = 4u64;
    let mut seed = 0x57A6u64;
    let mut engine = EngineChoice::Both;
    let mut shards = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                log::output(&usage());
                return 0;
            }
            "--campaigns" => match parse_u64(it.next(), "--campaigns") {
                Ok(v) => campaigns = v,
                Err(e) => return arg_error(&e),
            },
            "--seed" => match parse_u64(it.next(), "--seed") {
                Ok(v) => seed = v,
                Err(e) => return arg_error(&e),
            },
            "--shards" => match parse_u64(it.next(), "--shards") {
                Ok(0) => {
                    return arg_error(
                        "--shards expects a count >= 1 (0/auto is scenario-file only)",
                    )
                }
                Ok(v) => shards = v as usize,
                Err(e) => return arg_error(&e),
            },
            "--engine" => match it.next().map(String::as_str) {
                Some("both") => engine = EngineChoice::Both,
                Some(name) => match EngineKind::from_name(name) {
                    Some(k) if k.is_cycle_accurate() => engine = EngineChoice::One(k),
                    Some(k) => {
                        return arg_error(&format!(
                            "--engine {}: chaos invariants are cycle-exact; \
                             the analytic estimator cannot run them",
                            k.name()
                        ))
                    }
                    None => {
                        return arg_error(&format!(
                            "--engine expects flat|reference|both, got {name:?}"
                        ))
                    }
                },
                None => return arg_error("--engine needs a value"),
            },
            other => return arg_error(&format!("unknown flag {other:?}")),
        }
    }
    match run_storm(campaigns, seed, engine, shards, &ResultsDir::standard()) {
        Ok(summary) => {
            log::output(&summary);
            0
        }
        Err(e) => {
            log::error(&format!("metro chaos: {e}"));
            1
        }
    }
}

fn arg_error(msg: &str) -> i32 {
    log::error(&format!("metro chaos: {msg}\n"));
    log::error_text(&usage());
    2
}

fn parse_u64(v: Option<&String>, flag: &str) -> Result<u64, String> {
    let s = v.ok_or_else(|| format!("{flag} needs a value"))?;
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|e| format!("{flag}: {e}"))
}

/// Runs the storm and records `results/chaos.json` plus a manifest
/// record; returns the human summary. Split from the arg handling so
/// tests can drive it against a temporary results directory.
fn run_storm(
    campaigns: u64,
    base_seed: u64,
    engine: EngineChoice,
    shards: usize,
    results: &ResultsDir,
) -> Result<String, String> {
    let spec = MultibutterflySpec::figure1();
    let started = Instant::now();
    let mut reports: Vec<ChaosReport> = Vec::new();
    for k in 0..campaigns {
        let seed = base_seed.wrapping_add(k);
        let campaign = ChaosCampaign::generate(&spec, seed).map_err(|e| e.to_string())?;
        let report = match engine {
            EngineChoice::One(k) => run_campaign(&campaign, k),
            EngineChoice::Both => run_campaign_paired(&campaign),
        }
        .map_err(|e| format!("campaign seed {seed:#x}: {e}"))?;
        if shards > 1 {
            // Shard-identity audit: the same campaign on the sharded
            // Flat engine must be bit-identical to single-threaded,
            // telemetry snapshot included.
            run_campaign_shard_paired(&campaign, shards)
                .map_err(|e| format!("campaign seed {seed:#x} (shards={shards}): {e}"))?;
        }
        reports.push(report);
    }
    let wall = started.elapsed().as_secs_f64();

    let total_sends: usize = reports.iter().map(|r| r.sends).sum();
    let total_masks: u64 = reports.iter().map(|r| r.masks_applied).sum();
    let engines = match engine {
        EngineChoice::One(k) => k.name(),
        EngineChoice::Both => "flat+reference",
    };
    let mut fields = vec![
        ("artifact", Json::from("chaos")),
        ("base_seed", Json::from(base_seed)),
        ("campaigns", Json::from(campaigns)),
        ("engines", Json::from(engines)),
    ];
    // Conditional emission keeps the checked-in chaos.json byte-stable
    // for the classic single-threaded storm.
    if shards > 1 {
        fields.push(("shards", Json::from(shards)));
    }
    fields.extend([
        ("total_sends", Json::from(total_sends)),
        ("total_masks_applied", Json::from(total_masks)),
        (
            "reports",
            Json::arr(reports.iter().map(ChaosReport::to_json)),
        ),
    ]);
    let doc = Json::obj(fields);
    let out_path = results
        .write_json("chaos", &doc)
        .map_err(|e| e.to_string())?;
    results
        .append_manifest(&RunRecord {
            artifact: "chaos".to_string(),
            git: git_describe(),
            unix_time: unix_time_now(),
            wall_seconds: wall,
            points: reports.len(),
            jobs: 1,
            quick: false,
            params: Json::obj([
                ("base_seed", Json::from(base_seed)),
                ("campaigns", Json::from(campaigns)),
                ("engines", Json::from(engines)),
            ]),
            scenario_hash: None,
            telemetry_hash: None,
            failure: None,
        })
        .map_err(|e| e.to_string())?;

    let mut summary = String::new();
    let shard_note = if shards > 1 {
        format!(", shard-identical at {shards} shards")
    } else {
        String::new()
    };
    summary.push_str(&format!(
        "chaos storm: {campaigns} campaigns (base seed {base_seed:#x}, {engines}{shard_note})\n"
    ));
    for r in &reports {
        summary.push_str(&format!(
            "  seed {:#x}: {} fault(s), {} probes, {} retries, masked {} link(s), \
             latency {} -> {} cyc\n",
            r.seed,
            r.events,
            r.sends,
            r.total_retries,
            r.masked_links.len(),
            r.baseline_worst,
            r.recovery_worst,
        ));
    }
    summary.push_str(&format!(
        "all invariants held: no silent loss or duplication, every injected fault\n\
         masked online ({total_masks} port masks), recovery within bounds ({wall:.1}s)\n\
         wrote {}\n",
        out_path.display()
    ));
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_results(tag: &str) -> (std::path::PathBuf, ResultsDir) {
        let dir =
            std::env::temp_dir().join(format!("metro-chaos-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        (dir.clone(), ResultsDir::new(dir.join("results")))
    }

    #[test]
    fn run_storm_records_results_and_manifest() {
        let (dir, results) = temp_results("run");
        let summary = run_storm(1, 3, EngineChoice::One(EngineKind::Flat), 1, &results).unwrap();
        assert!(summary.contains("all invariants held"));

        let doc = Json::parse(&std::fs::read_to_string(results.root().join("chaos.json")).unwrap())
            .unwrap();
        assert_eq!(doc.get("campaigns").and_then(Json::as_f64), Some(1.0));
        let reports = doc.get("reports").and_then(Json::as_arr).unwrap();
        assert_eq!(reports.len(), 1);

        let manifest = results.read_manifest().unwrap();
        let runs = manifest.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(
            runs[0].get("artifact").and_then(Json::as_str),
            Some("chaos")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_sharded_storm_holds_shard_identity() {
        let (dir, results) = temp_results("sharded");
        let summary = run_storm(1, 3, EngineChoice::One(EngineKind::Flat), 4, &results).unwrap();
        assert!(summary.contains("shard-identical at 4 shards"));
        let doc = Json::parse(&std::fs::read_to_string(results.root().join("chaos.json")).unwrap())
            .unwrap();
        assert_eq!(doc.get("shards").and_then(Json::as_f64), Some(4.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert_eq!(main(&["--campaigns".into()]), 2);
        assert_eq!(main(&["--engine".into(), "warp".into()]), 2);
        // A real engine name that is not cycle-accurate is rejected too.
        assert_eq!(main(&["--engine".into(), "analytic".into()]), 2);
        assert_eq!(main(&["--shards".into(), "0".into()]), 2);
        assert_eq!(main(&["--frobnicate".into()]), 2);
        assert_eq!(main(&["--help".into()]), 0);
    }
}
