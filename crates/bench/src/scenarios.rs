//! The single scenario-construction path for the benchmark suite.
//!
//! Every sim-backed artifact builds its [`SweepConfig`] through
//! [`sweep_for`], so the quick and full profiles are two parameter sets
//! of *one* construction path — the shim binaries and `metro run`
//! cannot drift apart. The same configs convert to declarative
//! [`Scenario`] values ([`load_scenario`]) for the
//! `results/<artifact>.scenario.json` sidecars and the manifest's
//! `scenario_hash`, and [`named`] builds the checked-in
//! `scenarios/*.json` corpus (`metro scenario dump <name>`).

use metro_harness::Json;
use metro_sim::experiment::SweepConfig;
use metro_sim::network::SimConfig;
use metro_sim::scenario::{codec, FaultInjection, RepairSet, Scenario, SendSpec, WorkloadSpec};
use metro_sim::workload::{ArrivalProcess, RateMap, TraceEntry};
use metro_sim::TrafficPattern;
use metro_topo::fattree::{FatTree, FatTreeSpec};
use metro_topo::fault::{FaultKind, FaultSet};
use metro_topo::graph::LinkId;
use metro_topo::multibutterfly::{MultibutterflySpec, StageSpec, WiringStyle};

/// Applies a quick profile to a sweep configuration: the shortened
/// warmup/measure/drain windows the historical `--quick` flags used
/// (the exact windows vary slightly per artifact, hence parameters).
pub fn quicken(cfg: &mut SweepConfig, measure: u64, drain: u64) {
    cfg.warmup = 500;
    cfg.measure = measure;
    cfg.drain = drain;
}

/// The per-artifact sweep catalog: one function owns every artifact's
/// quick *and* full windows, so the two profiles measure the same
/// configuration at different lengths by construction.
#[must_use]
pub fn sweep_for(artifact: &str, quick: bool) -> SweepConfig {
    let mut cfg = SweepConfig::figure3();
    match artifact {
        "fig3" if quick => quicken(&mut cfg, 3_000, 1_000),
        "fault_sweep" if quick => quicken(&mut cfg, 3_000, 1_500),
        "ablation_selection"
        | "ablation_reclaim"
        | "ablation_dilation"
        | "ablation_concurrency"
        | "traffic_patterns" => {
            if quick {
                quicken(&mut cfg, 2_500, 1_500);
            } else {
                cfg.measure = 6_000;
            }
        }
        "scaling" if quick => quicken(&mut cfg, 2_500, 1_500),
        // Full-length fig3 / fault_sweep / scaling keep the Figure 3
        // windows; unloaded probes (cascade_sim, ablation_pipelining)
        // use them regardless of profile.
        _ => {}
    }
    cfg
}

/// The [`Scenario`] a sweep configuration describes at offered load
/// `load` — bit-compatible with
/// [`metro_sim::experiment::run_load_point`] on the same config, so the
/// emitted sidecar reproduces the artifact's measurement exactly.
#[must_use]
pub fn load_scenario(name: &str, cfg: &SweepConfig, load: f64) -> Scenario {
    Scenario {
        name: name.to_string(),
        topology: cfg.spec.clone(),
        sim: cfg.sim.clone(),
        seed: cfg.seed,
        faults: FaultSet::new(),
        injections: Vec::new(),
        workload: WorkloadSpec::Load {
            pattern: cfg.pattern.clone(),
            arrival: cfg.arrival.clone(),
            rates: cfg.rates.clone(),
            load,
            payload_words: cfg.payload_words,
            warmup: cfg.warmup,
            measure: cfg.measure,
            drain: cfg.drain,
        },
    }
}

/// Encodes a scenario for an [`metro_harness::ArtifactOutput`] sidecar.
#[must_use]
pub fn emit(scenario: &Scenario) -> Json {
    codec::encode(scenario)
}

/// The names of the checked-in corpus scenarios, in `scenarios/` order.
pub const NAMED: [&str; 11] = [
    "figure1",
    "figure3_load",
    "table4_hw0",
    "table4_hw1",
    "cascade_w4",
    "fault_masking",
    "chaos_smoke",
    "fattree",
    "hotspot_burst",
    "metro1k",
    "trace_replay",
];

/// A small deterministic send schedule spreading `count` messages of
/// `words` payload words across the first cycles of a run.
fn spread_sends(endpoints: usize, count: usize, words: usize) -> Vec<SendSpec> {
    (0..count)
        .map(|k| SendSpec {
            at: (k as u64) * 13,
            src: (k * 3) % endpoints,
            dest: (k * 5 + endpoints / 2) % endpoints,
            payload: (0..words).map(|w| (w + k) as u16).collect(),
        })
        .collect()
}

/// Builds one of the named corpus scenarios — the source of truth for
/// the checked-in `scenarios/*.json` files (`metro scenario dump`
/// renders exactly these).
#[must_use]
pub fn named(name: &str) -> Option<Scenario> {
    match name {
        // Figure 1's 16-endpoint multipath network under a scripted
        // all-pairs-ish schedule.
        "figure1" => Some(Scenario::scripted(
            "figure1",
            MultibutterflySpec::figure1(),
            spread_sends(16, 12, 19),
            2_500,
        )),
        // One cell of the Figure 3 curve, shortened for replay: load
        // 0.4 on the 64-endpoint 3-stage radix-4 network.
        "figure3_load" => {
            let mut cfg = SweepConfig::figure3();
            cfg.warmup = 300;
            cfg.measure = 1_200;
            cfg.drain = 600;
            Some(load_scenario("figure3_load", &cfg, 0.4))
        }
        // Table 4 cells: the 32-node 4-stage network with serial
        // (`hw = 0`) versus pipelined (`hw = 1`) connection setup.
        "table4_hw0" | "table4_hw1" => {
            let mut s = Scenario::scripted(
                name,
                MultibutterflySpec::paper32(),
                spread_sends(32, 6, 19),
                1_500,
            );
            s.sim.header_words = if name == "table4_hw1" { 1 } else { 0 };
            Some(s)
        }
        // Cascade width 4: 20 bytes over a 4-slice logical channel is
        // ceil(20/4) = 5 words, 4 of payload + 1 checksum.
        "cascade_w4" => {
            let mut s = Scenario::scripted(
                "cascade_w4",
                MultibutterflySpec::paper32(),
                spread_sends(32, 6, 4),
                1_500,
            );
            s.sim.seed = 0xCA5C;
            Some(s)
        }
        // The fault-masking story (§5.1): a corrupting link is present
        // from cycle 0; mid-run, a router dies too. Retry + stochastic
        // re-selection must still deliver.
        "fault_masking" => {
            let mut s = Scenario::scripted(
                "fault_masking",
                MultibutterflySpec::figure1(),
                spread_sends(16, 10, 8),
                3_000,
            );
            s.faults
                .break_link(LinkId::new(0, 1, 0), FaultKind::CorruptData { xor: 0x0040 });
            let mut dyn_faults = FaultSet::new();
            dyn_faults.kill_router(1, 2);
            s.injections.push(FaultInjection {
                at: 120,
                faults: dyn_faults,
                repairs: RepairSet::default(),
            });
            Some(s)
        }
        // The self-healing loop under a declarative schedule: a link
        // corrupts mid-run, the online diagnosis masks it from reply
        // evidence (`sim.self_heal`), and a timed repair later clears
        // the underlying fault — the mask stays, conservatively.
        "chaos_smoke" => {
            let mut s = Scenario::scripted(
                "chaos_smoke",
                MultibutterflySpec::figure1(),
                spread_sends(16, 14, 6),
                4_000,
            );
            s.sim.self_heal = true;
            let broken = LinkId::new(0, 2, 1);
            let mut dyn_faults = FaultSet::new();
            dyn_faults.break_link(broken, FaultKind::CorruptData { xor: 0x0008 });
            s.injections.push(FaultInjection {
                at: 60,
                faults: dyn_faults,
                repairs: RepairSet::default(),
            });
            s.injections.push(FaultInjection {
                at: 1_500,
                faults: FaultSet::new(),
                repairs: RepairSet {
                    links: vec![broken],
                    routers: vec![],
                    endpoints: vec![],
                },
            });
            Some(s)
        }
        // The second network class the paper builds from METRO parts
        // (§2, [7]): a binary fat-tree's routing structure unfolded
        // into uniform radix-2 dilation-2 stages — 8 leaves with two
        // ports each — under a scripted cross-tree schedule.
        "fattree" => {
            let tree = FatTree::build(&FatTreeSpec::binary(3, 2)).expect("valid fat-tree spec");
            Some(Scenario::scripted(
                "fattree",
                tree.to_multibutterfly(WiringStyle::Randomized, 0xFA7),
                spread_sends(8, 10, 8),
                2_500,
            ))
        }
        // The workload subsystem's bursty cell: Figure 1's network
        // under an on/off arrival process (duty cycle 1/3) aimed 15%
        // at a single hotspot, with a mild linear per-endpoint rate
        // skew. Exercises schema-2 workload fields, the burstiness
        // bucket in the analytic estimator, and heterogeneous rates on
        // every engine.
        "hotspot_burst" => Some(Scenario {
            name: "hotspot_burst".to_string(),
            topology: MultibutterflySpec::figure1(),
            sim: SimConfig::default(),
            seed: 0xB0B5,
            faults: FaultSet::new(),
            injections: Vec::new(),
            workload: WorkloadSpec::Load {
                pattern: TrafficPattern::Hotspot {
                    target: 9,
                    percent: 15,
                },
                arrival: ArrivalProcess::OnOff {
                    burst_mean: 60,
                    idle_mean: 120,
                },
                rates: RateMap::PerEndpoint((0..16).map(|e| 0.7 + 0.04 * f64::from(e)).collect()),
                load: 0.2,
                payload_words: 19,
                warmup: 300,
                measure: 1_200,
                drain: 600,
            },
        }),
        // The sharded-engine workhorse: a 1024-endpoint, 5-stage,
        // 1536-router fabric (radix 4 throughout, dilation 2 in the
        // four wide stages) under a short uniform load window. The
        // corpus file pins `sim.shards = 0` (host auto), so replaying
        // it exercises the partitioned tick by default — and must stay
        // bit-identical to a single-threaded run at any shard count.
        "metro1k" => Some(Scenario {
            name: "metro1k".to_string(),
            topology: MultibutterflySpec {
                endpoints: 1_024,
                endpoint_ports: 2,
                stages: vec![
                    StageSpec::new(8, 8, 2),
                    StageSpec::new(8, 8, 2),
                    StageSpec::new(8, 8, 2),
                    StageSpec::new(8, 8, 2),
                    StageSpec::new(4, 4, 1),
                ],
                wiring: WiringStyle::Randomized,
                seed: 0x1024,
            },
            sim: SimConfig {
                shards: 0,
                ..SimConfig::default()
            },
            seed: 0x1024_5EED,
            faults: FaultSet::new(),
            injections: Vec::new(),
            workload: WorkloadSpec::Load {
                pattern: TrafficPattern::Uniform,
                arrival: ArrivalProcess::Bernoulli,
                rates: RateMap::Uniform,
                load: 0.15,
                payload_words: 8,
                warmup: 100,
                measure: 400,
                drain: 300,
            },
        }),
        // A recorded-arrival replay on Figure 1's network: sixty
        // timestamped `(cycle, src, dest, payload)` entries spread over
        // ~900 cycles, replayed identically by the cycle engines and
        // the analytic estimator. The trace is the workload — `load`
        // and `pattern` are carried but unused.
        "trace_replay" => Some(Scenario {
            name: "trace_replay".to_string(),
            topology: MultibutterflySpec::figure1(),
            sim: SimConfig::default(),
            seed: 0x7ACE,
            faults: FaultSet::new(),
            injections: Vec::new(),
            workload: WorkloadSpec::Load {
                pattern: TrafficPattern::Uniform,
                arrival: ArrivalProcess::Trace(
                    (0..60)
                        .map(|k| TraceEntry {
                            at: (k as u64) * 15 + (k as u64 % 4),
                            src: (k * 7) % 16,
                            dest: (k * 7 + 3 + k % 5) % 16,
                            payload_words: 1 + k % 19,
                        })
                        .collect(),
                ),
                rates: RateMap::Uniform,
                load: 0.2,
                payload_words: 19,
                warmup: 100,
                measure: 1_000,
                drain: 400,
            },
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metro_sim::scenario::run_scenario;
    use metro_sim::TrafficPattern;

    #[test]
    fn quick_and_full_share_one_construction_path() {
        for artifact in [
            "fig3",
            "fault_sweep",
            "ablation_selection",
            "ablation_reclaim",
            "ablation_dilation",
            "ablation_concurrency",
            "traffic_patterns",
            "scaling",
            "cascade_sim",
            "ablation_pipelining",
        ] {
            let quick = sweep_for(artifact, true);
            let full = sweep_for(artifact, false);
            // The profiles may differ only in their time windows — same
            // topology, same sim parameters, same pattern, same seed.
            assert_eq!(quick.spec, full.spec, "{artifact}: topology drifted");
            assert_eq!(quick.sim, full.sim, "{artifact}: sim config drifted");
            assert_eq!(quick.pattern, full.pattern, "{artifact}: pattern drifted");
            assert_eq!(quick.seed, full.seed, "{artifact}: seed drifted");
            assert_eq!(
                quick.payload_words, full.payload_words,
                "{artifact}: payload drifted"
            );
        }
    }

    #[test]
    fn load_scenarios_carry_the_sweep_windows() {
        let cfg = sweep_for("fig3", true);
        let s = load_scenario("fig3", &cfg, 0.25);
        match &s.workload {
            WorkloadSpec::Load {
                load,
                warmup,
                measure,
                drain,
                payload_words,
                pattern,
                arrival,
                rates,
            } => {
                assert_eq!(*load, 0.25);
                assert_eq!(*warmup, cfg.warmup);
                assert_eq!(*measure, cfg.measure);
                assert_eq!(*drain, cfg.drain);
                assert_eq!(*payload_words, cfg.payload_words);
                assert_eq!(pattern, &TrafficPattern::Uniform);
                assert_eq!(arrival, &ArrivalProcess::Bernoulli);
                assert_eq!(rates, &RateMap::Uniform);
            }
            WorkloadSpec::Sends { .. } => panic!("expected a Load workload"),
        }
        assert_eq!(s.seed, cfg.seed);
        assert_eq!(s.topology, cfg.spec);
    }

    #[test]
    fn every_named_scenario_builds_and_round_trips() {
        for name in NAMED {
            let s = named(name).expect("catalog entry");
            assert_eq!(s.name, name);
            let doc = emit(&s);
            let decoded = codec::decode(&doc).expect("codec round-trip");
            assert_eq!(decoded, s, "{name} changed across encode/decode");
        }
        assert!(named("no_such_scenario").is_none());
    }

    #[test]
    fn chaos_smoke_scenario_heals_and_delivers() {
        let s = named("chaos_smoke").unwrap();
        assert!(s.sim.self_heal, "chaos_smoke must run with healing on");
        let r = run_scenario(&s).expect("runnable");
        assert_eq!(r.abandoned, 0, "healing scenario must lose no messages");
        assert_eq!(r.outcomes.len(), 14);
        assert_eq!(r.delivered, 14);
    }

    #[test]
    fn fattree_scenario_delivers_identically_on_both_engines() {
        use metro_sim::network::EngineKind;

        let base = named("fattree").unwrap();
        let mut flat = base.clone();
        flat.sim.engine = EngineKind::Flat;
        let mut reference = base;
        reference.sim.engine = EngineKind::Reference;

        let f = run_scenario(&flat).expect("runnable on flat");
        let r = run_scenario(&reference).expect("runnable on reference");
        assert_eq!(f.delivered, 10, "all sends must deliver");
        assert_eq!(f.abandoned, 0);
        assert_eq!(
            f.outcome_digest(),
            r.outcome_digest(),
            "fat-tree unfolding must not split the engines"
        );
    }

    #[test]
    fn fault_masking_scenario_survives_its_faults() {
        let s = named("fault_masking").unwrap();
        let r = run_scenario(&s).expect("runnable");
        assert_eq!(r.abandoned, 0, "masking scenario must lose no messages");
        assert_eq!(r.delivered, 10);
        assert_eq!(r.outcomes.len(), 10);
        // (fabric_idle is not asserted: a router killed mid-connection
        // can legitimately leave a half-open path in the fabric.)
    }
}
