//! Criterion bench for the Figure 1 artifact: topology construction and
//! multipath analysis on the 16×16 network.

use criterion::{criterion_group, criterion_main, Criterion};
use metro_topo::analysis::path_profile;
use metro_topo::fault::FaultSet;
use metro_topo::multibutterfly::{Multibutterfly, MultibutterflySpec, WiringStyle};
use metro_topo::paths::count_paths;
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");

    g.bench_function("build_randomized", |b| {
        b.iter(|| Multibutterfly::build(black_box(&MultibutterflySpec::figure1())).unwrap())
    });

    g.bench_function("build_deterministic", |b| {
        let spec = MultibutterflySpec::figure1().with_wiring(WiringStyle::Deterministic);
        b.iter(|| Multibutterfly::build(black_box(&spec)).unwrap())
    });

    let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
    let clean = FaultSet::new();
    g.bench_function("count_paths_single_pair", |b| {
        b.iter(|| count_paths(black_box(&net), 5, 15, &clean))
    });

    g.bench_function("path_profile_all_pairs", |b| {
        b.iter(|| path_profile(black_box(&net), &clean))
    });

    let mut faults = FaultSet::new();
    faults.kill_router(1, 0);
    faults.kill_router(0, 3);
    g.bench_function("count_paths_under_faults", |b| {
        b.iter(|| count_paths(black_box(&net), 5, 15, &faults))
    });

    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
