//! Criterion bench for the Table 3/4/5 artifacts: evaluating the
//! analytic latency model over the full implementation catalog.

use criterion::{criterion_group, criterion_main, Criterion};
use metro_timing::catalog::table3;
use metro_timing::contemporary::table5;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");

    g.bench_function("table3_all_rows", |b| {
        b.iter(|| {
            let rows = table3();
            let total: f64 = rows.iter().map(|r| black_box(r.t20_32_ns())).sum();
            assert!(total > 0.0);
            total
        })
    });

    g.bench_function("table3_verify_against_paper", |b| {
        let rows = table3();
        b.iter(|| {
            rows.iter()
                .all(|r| (r.t20_32_ns() - r.expected_t20_32_ns).abs() < 1e-9)
        })
    });

    g.bench_function("table5_estimates", |b| {
        b.iter(|| {
            table5()
                .iter()
                .map(|r| black_box(r.estimate_t20_32_ns()).0)
                .sum::<f64>()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
