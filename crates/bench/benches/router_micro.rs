//! Microbenchmarks of the routing component itself: per-cycle tick
//! cost, allocation/arbitration, checksum absorption, and scan access —
//! the "simplicity of routing function" the paper trades on.

use criterion::{criterion_group, criterion_main, Criterion};
use metro_core::{
    Allocator, ArchParams, BwdIn, FwdIn, RandomSource, Router, RouterConfig, StreamChecksum, Word,
};
use metro_scan::ScanDevice;
use std::hint::black_box;

fn bench_router(c: &mut Criterion) {
    let mut g = c.benchmark_group("router_micro");

    // Steady-state forwarding tick on an RN1-class router.
    g.bench_function("tick_forwarding", |b| {
        let params = ArchParams::rn1();
        let config = RouterConfig::new(&params)
            .with_dilation(2)
            .with_swallow_all(true)
            .build()
            .unwrap();
        let mut router = Router::new(params, config, 1).unwrap();
        // Open connections on all 8 forward ports.
        let mut open = FwdIn::idle(8);
        for f in 0..8 {
            open = open.with(f, Word::Data(((f % 4) as u16) << 6));
        }
        router.tick(&open, &BwdIn::idle(8));
        let mut data = FwdIn::idle(8);
        for f in 0..8 {
            data = data.with(f, Word::Data(0x5A));
        }
        let bwd = BwdIn::idle(8);
        b.iter(|| black_box(router.tick(black_box(&data), &bwd)));
    });

    g.bench_function("tick_idle", |b| {
        let params = ArchParams::rn1();
        let config = RouterConfig::new(&params).build().unwrap();
        let mut router = Router::new(params, config, 1).unwrap();
        let fwd = FwdIn::idle(8);
        let bwd = BwdIn::idle(8);
        b.iter(|| black_box(router.tick(&fwd, &bwd)));
    });

    g.bench_function("allocator_arbitrate_8way", |b| {
        let params = ArchParams::rn1();
        let config = RouterConfig::new(&params).with_dilation(2).build().unwrap();
        let requests: Vec<(usize, usize)> = (0..8).map(|f| (f, f % 4)).collect();
        let mut rng = RandomSource::new(7);
        b.iter(|| {
            let mut alloc = Allocator::new(&config, 8);
            black_box(alloc.arbitrate(black_box(&requests), &config, &mut rng))
        });
    });

    g.bench_function("checksum_absorb_1k_words", |b| {
        b.iter(|| {
            let mut ck = StreamChecksum::new();
            for v in 0..1024u16 {
                ck.absorb_value(black_box(v));
            }
            ck.value()
        });
    });

    g.bench_function("scan_write_config", |b| {
        let params = ArchParams::metrojr();
        let config = RouterConfig::new(&params).with_dilation(1).build().unwrap();
        b.iter(|| {
            let mut dev = ScanDevice::new(params);
            dev.write_config(black_box(&config));
            dev.config().dilation()
        });
    });

    g.finish();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
