//! Criterion bench for the §6.2 fault-degradation artifact: measuring a
//! faulty network window (the full sweep is `--bin fault_sweep`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metro_sim::experiment::{run_fault_point, SweepConfig};
use std::hint::black_box;

fn bench_faults(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_degradation");
    g.sample_size(10);

    for kills in [0usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("dead_routers", kills),
            &kills,
            |b, &kills| {
                let mut cfg = SweepConfig::figure3();
                cfg.warmup = 200;
                cfg.measure = 800;
                cfg.drain = 400;
                b.iter(|| run_fault_point(black_box(&cfg), 0.3, kills, kills))
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench_faults);
criterion_main!(benches);
