//! Criterion bench for the Figure 3 artifact: short latency-versus-load
//! measurement windows on the paper's 64-endpoint network (the full
//! curve is produced by `cargo run -p metro-bench --bin fig3`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metro_sim::experiment::{run_load_point, unloaded_latency, SweepConfig};
use std::hint::black_box;

fn quick_config() -> SweepConfig {
    let mut cfg = SweepConfig::figure3();
    cfg.warmup = 200;
    cfg.measure = 800;
    cfg.drain = 400;
    cfg
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);

    g.bench_function("unloaded_latency", |b| {
        let cfg = quick_config();
        b.iter(|| unloaded_latency(black_box(&cfg)))
    });

    for load in [0.1, 0.4, 0.7] {
        g.bench_with_input(
            BenchmarkId::new("load_point", format!("{load:.1}")),
            &load,
            |b, &load| {
                let cfg = quick_config();
                b.iter(|| run_load_point(black_box(&cfg), load))
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
