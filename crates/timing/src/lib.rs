//! # metro-timing — the analytic latency model of Tables 3–5
//!
//! The paper's single-router performance claims are *architecture ×
//! technology*: cycle counts determined by the METRO parameters and
//! nanoseconds-per-cycle determined by the implementation technology.
//! Table 4 gives the closed-form model; Table 3 applies it to a family
//! of METRO implementations; Table 5 applies the same `t_20,32` figure
//! of merit to contemporary routers from published datasheet numbers.
//!
//! This crate reproduces all three tables exactly:
//!
//! ```
//! use metro_timing::catalog;
//!
//! let rows = catalog::table3();
//! let orbit = &rows[0];
//! assert_eq!(orbit.name, "METROJR-ORBIT");
//! assert_eq!(orbit.t20_32_ns().round() as u64, 1250); // the printed cell
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
pub mod contemporary;
pub mod equations;
pub mod report;
pub mod sweeps;

pub use catalog::ImplementationSpec;
pub use contemporary::ContemporaryRouter;
pub use equations::LatencyModel;
