//! Analytic design-space sweeps over the Table 4 model.
//!
//! The paper's conclusion argues METRO "allows room for tradeoffs to be
//! made between latency, throughput, i/o pins, and cost on an
//! implementation and application basis" (§8). These sweeps map that
//! space: how `t_20,32`-style delivery latency moves with message size,
//! cascade width, and technology, and where the crossovers fall.

use crate::catalog::ImplementationSpec;
use crate::equations::LatencyModel;
use metro_harness::par_map;
use std::num::NonZeroUsize;

/// Delivery latency versus message size for one implementation point:
/// `(bytes, ns)` pairs. Single-worker form of
/// [`message_size_sweep_jobs`].
#[must_use]
pub fn message_size_sweep(model: &LatencyModel, sizes_bytes: &[usize]) -> Vec<(usize, f64)> {
    message_size_sweep_jobs(model, sizes_bytes, NonZeroUsize::MIN)
}

/// [`message_size_sweep`] on the shared point executor: each size is an
/// independent model evaluation, mapped over up to `jobs` workers with
/// results in input order (identical to the sequential sweep — the
/// model is deterministic).
#[must_use]
pub fn message_size_sweep_jobs(
    model: &LatencyModel,
    sizes_bytes: &[usize],
    jobs: NonZeroUsize,
) -> Vec<(usize, f64)> {
    par_map(jobs, sizes_bytes, |_, &b| (b, model.delivery_ns(b)))
}

/// Delivery latency versus cascade width for a base model: `(c, ns)`.
/// Wider cascades move more bits per clock but replicate the header
/// across slices (Table 4's `hbits · c`), so returns diminish.
/// Single-worker form of [`cascade_sweep_jobs`].
#[must_use]
pub fn cascade_sweep(base: &LatencyModel, widths: &[usize], bytes: usize) -> Vec<(usize, f64)> {
    cascade_sweep_jobs(base, widths, bytes, NonZeroUsize::MIN)
}

/// [`cascade_sweep`] on the shared point executor.
#[must_use]
pub fn cascade_sweep_jobs(
    base: &LatencyModel,
    widths: &[usize],
    bytes: usize,
    jobs: NonZeroUsize,
) -> Vec<(usize, f64)> {
    par_map(jobs, widths, |_, &c| {
        let m = LatencyModel {
            cascade: c,
            ..base.clone()
        };
        (c, m.delivery_ns(bytes))
    })
}

/// The message size (bytes) at which implementation `a` starts beating
/// `b`, if any crossover exists in `1..=limit`. Serialization-dominated
/// regimes favor wide/fast channels; latency-dominated regimes favor
/// few stages and short setup.
#[must_use]
pub fn crossover_bytes(a: &LatencyModel, b: &LatencyModel, limit: usize) -> Option<usize> {
    let mut prev = a.delivery_ns(1) < b.delivery_ns(1);
    for bytes in 2..=limit {
        let now = a.delivery_ns(bytes) < b.delivery_ns(bytes);
        if now != prev {
            return Some(bytes);
        }
        prev = now;
    }
    None
}

/// For each Table 3 row, the fraction of `t_20,32` spent on wire
/// serialization (as opposed to router stage latency) — the
/// short-haul-versus-long-haul balance of §2.
#[must_use]
pub fn serialization_fraction(rows: &[ImplementationSpec]) -> Vec<(String, f64)> {
    rows.iter()
        .map(|r| {
            let m = r.model();
            let stage = m.stages() as f64 * m.t_stg_ns();
            let total = m.t20_32_ns();
            (
                format!("{} [{}]", r.name, r.technology),
                1.0 - stage / total,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::table3;
    use crate::equations::{stages_32_node_4stage, T_WIRE_NS};

    fn orbit() -> LatencyModel {
        LatencyModel {
            t_clk_ns: 25.0,
            t_io_ns: 10.0,
            t_wire_ns: T_WIRE_NS,
            width: 4,
            cascade: 1,
            pipestages: 1,
            header_words: 0,
            stage_digit_bits: stages_32_node_4stage(),
        }
    }

    #[test]
    fn latency_grows_linearly_with_message_size() {
        let sweep = message_size_sweep(&orbit(), &[20, 40, 80]);
        let slope1 = sweep[1].1 - sweep[0].1;
        let slope2 = sweep[2].1 - sweep[1].1;
        assert_eq!(slope2, slope1 * 2.0, "linear in bytes");
        assert_eq!(sweep[0].1, 1250.0);
    }

    #[test]
    fn cascading_has_diminishing_returns() {
        let sweep = cascade_sweep(&orbit(), &[1, 2, 4, 8], 20);
        // Monotone improvement...
        for pair in sweep.windows(2) {
            assert!(pair[1].1 < pair[0].1);
        }
        // ...but each doubling saves less than the previous one.
        let s1 = sweep[0].1 - sweep[1].1;
        let s2 = sweep[1].1 - sweep[2].1;
        let s3 = sweep[2].1 - sweep[3].1;
        assert!(s2 < s1 && s3 < s2, "{s1} {s2} {s3}");
    }

    #[test]
    fn fewer_stages_win_for_small_messages() {
        // METRO i=o=8 (2 stages) vs METROJR (4 stages), same std-cell
        // technology: the 2-stage network pays less stage latency, the
        // difference shrinking as serialization dominates.
        let rows = table3();
        let two_stage = rows[7].model(); // METRO i=o=8 std cell (460 ns)
        let four_stage = rows[4].model(); // METROJR std cell (500 ns)
        assert!(two_stage.delivery_ns(4) < four_stage.delivery_ns(4));
        // Both scale identically per byte (same channel), so no
        // crossover ever occurs.
        assert_eq!(crossover_bytes(&two_stage, &four_stage, 512), None);
    }

    #[test]
    fn cascade_crossover_against_faster_stages() {
        // A 4-cascade gate-array channel against a std-cell
        // single-width channel: the faster technology wins on tiny
        // messages (cheaper stages), the wide cascade wins once
        // serialization dominates. Table 3 prints both at 500 ns for
        // 20-byte messages — the crossover sits exactly at the paper's
        // figure-of-merit message size.
        let rows = table3();
        let wide_slow = rows[2].model(); // ORBIT 4-cascade, t_stg 50
        let narrow_fast = rows[4].model(); // METROJR std cell, t_stg 20
        assert!(narrow_fast.delivery_ns(1) < wide_slow.delivery_ns(1));
        assert_eq!(wide_slow.delivery_ns(20), narrow_fast.delivery_ns(20));
        let cross = crossover_bytes(&wide_slow, &narrow_fast, 2048).expect("crossover");
        assert!((18..=22).contains(&cross), "crossover at {cross} bytes");
        assert!(
            wide_slow.delivery_ns(cross + 8) < narrow_fast.delivery_ns(cross + 8),
            "wide channel must win past the crossover at {cross} bytes"
        );
    }

    #[test]
    fn crossover_of_identical_models_is_none() {
        // No crossover can exist between a model and itself, nor
        // between two models whose order never changes.
        let m = orbit();
        assert_eq!(crossover_bytes(&m, &m, 1024), None);
        let faster_everywhere = LatencyModel {
            t_clk_ns: m.t_clk_ns / 2.0,
            ..m.clone()
        };
        assert_eq!(crossover_bytes(&faster_everywhere, &m, 1024), None);
        assert_eq!(crossover_bytes(&m, &faster_everywhere, 1024), None);
    }

    #[test]
    fn crossover_with_trivial_limit_is_none() {
        // limit = 1 leaves no second point to compare against.
        let rows = table3();
        assert_eq!(crossover_bytes(&rows[2].model(), &rows[4].model(), 1), None);
    }

    #[test]
    fn parallel_sweeps_match_sequential() {
        let m = orbit();
        let sizes = [1usize, 4, 20, 64, 256, 1024];
        let jobs = NonZeroUsize::new(4).unwrap();
        assert_eq!(
            message_size_sweep(&m, &sizes),
            message_size_sweep_jobs(&m, &sizes, jobs)
        );
        let widths = [1usize, 2, 4, 8];
        assert_eq!(
            cascade_sweep(&m, &widths, 20),
            cascade_sweep_jobs(&m, &widths, 20, jobs)
        );
    }

    #[test]
    fn serialization_dominates_every_table3_row() {
        // Short-haul regime (§2): message injection time is comparable
        // to or larger than transit latency in all rows.
        for (name, frac) in serialization_fraction(&table3()) {
            assert!(
                (0.5..1.0).contains(&frac),
                "{name}: serialization fraction {frac}"
            );
        }
    }
}
