//! The latency equations of Table 4.
//!
//! | quantity | definition |
//! |----------|------------|
//! | `t_wire` | assumed wire delay (3 ns in the paper) |
//! | `vtd` | `ceil((t_io + t_wire) / t_clk)` — interconnect delay in clock cycles |
//! | `t_on_chip` | `t_clk · dp` — time data traverses the chip |
//! | `t_stg` | `t_on_chip + vtd · t_clk` — chip-to-chip latency in the network |
//! | `hbits` | routing bits: `hw·w·c·stages` when `hw > 0`, else `ceil((Σ log2 r_s)/w)·w·c` |
//! | `t_20,32` | `stages · t_stg + (20·8 + hbits) · t_bit` |
//!
//! with `t_bit = t_clk / (w·c)` — one clock moves `w·c` bits across a
//! (possibly cascaded) channel.

/// The wire delay the paper assumes in Table 4, in nanoseconds.
pub const T_WIRE_NS: f64 = 3.0;

/// Message size of the `t_20,32` figure of merit: 20 bytes ("a 4-word
/// cache-line including checksum").
pub const MESSAGE_BITS: usize = 20 * 8;

/// The Table 4 latency model for one METRO implementation point.
///
/// # Examples
///
/// ```
/// use metro_timing::LatencyModel;
///
/// // METROJR-ORBIT: 25 ns clock, 10 ns i/o, w = 4, dp = 1, hw = 0,
/// // 4-stage 32-node network with stage radices [2, 2, 2, 4].
/// let m = LatencyModel {
///     t_clk_ns: 25.0,
///     t_io_ns: 10.0,
///     t_wire_ns: 3.0,
///     width: 4,
///     cascade: 1,
///     pipestages: 1,
///     header_words: 0,
///     stage_digit_bits: vec![1, 1, 1, 2],
/// };
/// assert_eq!(m.vtd(), 1);
/// assert_eq!(m.t_stg_ns(), 50.0);
/// assert_eq!(m.t20_32_ns(), 1250.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Clock period, ns.
    pub t_clk_ns: f64,
    /// I/O (pad + driver) delay, ns.
    pub t_io_ns: f64,
    /// Wire delay, ns (the paper assumes 3).
    pub t_wire_ns: f64,
    /// Channel width per router slice, bits.
    pub width: usize,
    /// Width-cascade factor `c` (1 = no cascading).
    pub cascade: usize,
    /// Internal data pipestages, `dp`.
    pub pipestages: usize,
    /// Header words consumed per router, `hw`.
    pub header_words: usize,
    /// `log2(radix)` of each network stage, injection side first.
    pub stage_digit_bits: Vec<usize>,
}

impl LatencyModel {
    /// Network stages the model spans.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stage_digit_bits.len()
    }

    /// Interconnect delay in clock cycles:
    /// `vtd = ceil((t_io + t_wire) / t_clk)`.
    #[must_use]
    pub fn vtd(&self) -> usize {
        ((self.t_io_ns + self.t_wire_ns) / self.t_clk_ns).ceil() as usize
    }

    /// Time for data to traverse the chip: `t_clk · dp`, ns.
    #[must_use]
    pub fn t_on_chip_ns(&self) -> f64 {
        self.t_clk_ns * self.pipestages as f64
    }

    /// Chip-to-chip latency in the network:
    /// `t_stg = t_on_chip + vtd · t_clk`, ns.
    #[must_use]
    pub fn t_stg_ns(&self) -> f64 {
        self.t_on_chip_ns() + self.vtd() as f64 * self.t_clk_ns
    }

    /// Per-bit transfer time: `t_clk / (w · c)`, ns.
    #[must_use]
    pub fn t_bit_ns(&self) -> f64 {
        self.t_clk_ns / (self.width * self.cascade) as f64
    }

    /// Routing bits required (`hbits` of Table 4).
    #[must_use]
    pub fn header_bits(&self) -> usize {
        if self.header_words > 0 {
            self.header_words * self.width * self.cascade * self.stages()
        } else {
            let digit_bits: usize = self.stage_digit_bits.iter().sum();
            digit_bits.div_ceil(self.width) * self.width * self.cascade
        }
    }

    /// The `t_20,32` figure of merit: latency to deliver a 20-byte
    /// message across the 32-node multibutterfly, ns:
    /// `stages · t_stg + (160 + hbits) · t_bit`.
    #[must_use]
    pub fn t20_32_ns(&self) -> f64 {
        self.stages() as f64 * self.t_stg_ns()
            + (MESSAGE_BITS + self.header_bits()) as f64 * self.t_bit_ns()
    }

    /// Generalized delivery time for a message of `bytes` bytes across
    /// `stages` (already fixed by the model), ns.
    #[must_use]
    pub fn delivery_ns(&self, bytes: usize) -> f64 {
        self.stages() as f64 * self.t_stg_ns()
            + (bytes * 8 + self.header_bits()) as f64 * self.t_bit_ns()
    }
}

/// The stage digit widths of the 32-node, Figure 1-style multibutterfly
/// used throughout Table 3 for 4-stage METROJR-family rows: three
/// radix-2 dilated stages and a radix-4 dilation-1 delivery stage.
#[must_use]
pub fn stages_32_node_4stage() -> Vec<usize> {
    vec![1, 1, 1, 2]
}

/// The stage digit widths of the 2-stage 32-node network used for the
/// `METRO i = o = 8` rows: a radix-8 stage followed by a radix-4
/// dilated stage.
#[must_use]
pub fn stages_32_node_2stage() -> Vec<usize> {
    vec![3, 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orbit() -> LatencyModel {
        LatencyModel {
            t_clk_ns: 25.0,
            t_io_ns: 10.0,
            t_wire_ns: T_WIRE_NS,
            width: 4,
            cascade: 1,
            pipestages: 1,
            header_words: 0,
            stage_digit_bits: stages_32_node_4stage(),
        }
    }

    #[test]
    fn vtd_rounds_up() {
        let m = orbit();
        assert_eq!(m.vtd(), 1); // (10+3)/25 -> 1
        let fast = LatencyModel {
            t_clk_ns: 5.0,
            t_io_ns: 3.0,
            ..orbit()
        };
        assert_eq!(fast.vtd(), 2); // (3+3)/5 -> 2
        let faster = LatencyModel {
            t_clk_ns: 2.0,
            t_io_ns: 3.0,
            ..orbit()
        };
        assert_eq!(faster.vtd(), 3); // 6/2 -> 3
    }

    #[test]
    fn t_stg_matches_table3_column() {
        assert_eq!(orbit().t_stg_ns(), 50.0);
        let std_cell = LatencyModel {
            t_clk_ns: 10.0,
            t_io_ns: 5.0,
            ..orbit()
        };
        assert_eq!(std_cell.t_stg_ns(), 20.0);
        let custom = LatencyModel {
            t_clk_ns: 5.0,
            t_io_ns: 3.0,
            ..orbit()
        };
        assert_eq!(custom.t_stg_ns(), 15.0);
    }

    #[test]
    fn hbits_hw0_rounds_to_whole_words() {
        // 5 digit bits on a 4-bit channel -> 8 bits.
        assert_eq!(orbit().header_bits(), 8);
        // Cascading replicates the header across slices.
        let c2 = LatencyModel {
            cascade: 2,
            ..orbit()
        };
        assert_eq!(c2.header_bits(), 16);
    }

    #[test]
    fn hbits_hw_positive_is_linear() {
        let hw1 = LatencyModel {
            header_words: 1,
            ..orbit()
        };
        assert_eq!(hw1.header_bits(), 4 * 4);
        let hw2_w4_s2 = LatencyModel {
            header_words: 2,
            stage_digit_bits: stages_32_node_2stage(),
            ..orbit()
        };
        assert_eq!(hw2_w4_s2.header_bits(), (2 * 4) * 2);
    }

    #[test]
    fn t20_32_reproduces_the_orbit_cell() {
        assert_eq!(orbit().t20_32_ns(), 1250.0);
    }

    #[test]
    fn delivery_scales_with_message_size() {
        let m = orbit();
        assert!(m.delivery_ns(40) > m.t20_32_ns());
        assert_eq!(m.delivery_ns(20), m.t20_32_ns());
    }
}
