//! Table 5: contemporary routing technologies.
//!
//! The paper compares METRO against seven contemporary routers by
//! estimating `t_20,32` — the unloaded latency to deliver a 20-byte
//! message across a 32-node configuration — from published switch
//! latencies and channel rates. This module carries the published
//! numbers and reconstructs the estimate as
//! `hops × switch latency + 160 bits × t_bit`, with the hop counts a
//! 32-node configuration of each machine implies.

/// One row of Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct ContemporaryRouter {
    /// Machine/router name, e.g. `"TMC/CM-5 Router"`.
    pub name: &'static str,
    /// Published switch/router latency, ns (min, max).
    pub latency_ns: (f64, f64),
    /// Channel rate: ns per transfer and bits per transfer.
    pub t_bit: (f64, usize),
    /// Switch traversals for a 32-node configuration (min, max).
    pub hops: (usize, usize),
    /// The paper's printed `t_20,32` estimate, ns (min, max; equal when
    /// a single value is printed).
    pub published_t20_32_ns: (f64, f64),
    /// Bibliography reference in the paper.
    pub reference: &'static str,
}

impl ContemporaryRouter {
    /// Nanoseconds per bit on the channel.
    #[must_use]
    pub fn ns_per_bit(&self) -> f64 {
        self.t_bit.0 / self.t_bit.1 as f64
    }

    /// Reconstructed `t_20,32` estimate, ns (min, max):
    /// `hops × latency + 160 × ns_per_bit`.
    #[must_use]
    pub fn estimate_t20_32_ns(&self) -> (f64, f64) {
        let bits = 160.0 * self.ns_per_bit();
        (
            self.hops.0 as f64 * self.latency_ns.0 + bits,
            self.hops.1 as f64 * self.latency_ns.1 + bits,
        )
    }
}

/// All rows of Table 5, in the paper's order.
#[must_use]
pub fn table5() -> Vec<ContemporaryRouter> {
    vec![
        ContemporaryRouter {
            name: "DEC/GIGAswitch",
            latency_ns: (15_000.0, 15_000.0),
            t_bit: (10.0, 1),
            hops: (1, 1),
            published_t20_32_ns: (16_000.0, 16_000.0),
            reference: "[5]",
        },
        ContemporaryRouter {
            name: "KSR/KSR-1",
            latency_ns: (3_000.0, 3_000.0),
            t_bit: (30.0, 8),
            hops: (1, 1),
            published_t20_32_ns: (3_500.0, 3_500.0),
            reference: "[12]",
        },
        ContemporaryRouter {
            name: "TMC/CM-5 Router",
            latency_ns: (250.0, 250.0),
            t_bit: (25.0, 4),
            hops: (2, 10),
            published_t20_32_ns: (1_500.0, 3_500.0),
            reference: "[13]",
        },
        ContemporaryRouter {
            name: "INMOS/C104",
            latency_ns: (1_000.0, 1_000.0),
            t_bit: (10.0, 1),
            hops: (1, 1),
            published_t20_32_ns: (2_500.0, 2_500.0),
            reference: "[18]",
        },
        ContemporaryRouter {
            name: "MIT/J-Machine",
            latency_ns: (60.0, 60.0),
            t_bit: (30.0, 8),
            hops: (1, 7),
            published_t20_32_ns: (660.0, 1_020.0),
            reference: "[6]",
        },
        ContemporaryRouter {
            name: "Caltech/MRC",
            latency_ns: (50.0, 100.0),
            t_bit: (11.0, 8),
            hops: (1, 6),
            published_t20_32_ns: (300.0, 800.0),
            reference: "[21]",
        },
        ContemporaryRouter {
            name: "Mercury/RACE",
            latency_ns: (100.0, 100.0),
            t_bit: (5.0, 8),
            hops: (4, 4),
            published_t20_32_ns: (500.0, 500.0),
            reference: "[1]",
        },
    ]
}

/// The comparison the paper draws in §7: even the minimal gate-array
/// METRO (`t_20,32 = 1250 ns`) beats most of the contemporary field.
#[must_use]
pub fn routers_slower_than(t20_32_ns: f64) -> Vec<&'static str> {
    table5()
        .into_iter()
        .filter(|r| r.published_t20_32_ns.0 > t20_32_ns)
        .map(|r| r.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_published_values() {
        for r in table5() {
            let (lo, hi) = r.estimate_t20_32_ns();
            let (plo, phi) = r.published_t20_32_ns;
            // The paper rounds aggressively; require the reconstruction
            // within 20% at both ends of the range.
            assert!(
                (lo - plo).abs() / plo < 0.2,
                "{}: estimated min {lo} vs published {plo}",
                r.name
            );
            assert!(
                (hi - phi).abs() / phi < 0.2,
                "{}: estimated max {hi} vs published {phi}",
                r.name
            );
        }
    }

    #[test]
    fn j_machine_reconstruction_is_exact() {
        let jm = &table5()[4];
        let (lo, hi) = jm.estimate_t20_32_ns();
        assert_eq!(lo, 660.0); // 60 + 160·3.75
        assert_eq!(hi, 1020.0); // 420 + 600
    }

    #[test]
    fn gigaswitch_is_long_haul_slow() {
        let gs = &table5()[0];
        let (lo, _) = gs.estimate_t20_32_ns();
        assert_eq!(lo, 16_600.0); // 15 µs + 1.6 µs, printed as 16 µs
    }

    #[test]
    fn table_has_seven_rows() {
        assert_eq!(table5().len(), 7);
    }

    #[test]
    fn even_gate_array_metro_beats_most_of_the_field() {
        // §7: "even the minimal gate-array implementation of METRO
        // compares favorably with the existing field".
        let slower = routers_slower_than(1250.0);
        assert!(slower.len() >= 4, "slower: {slower:?}");
        assert!(slower.contains(&"DEC/GIGAswitch"));
        assert!(slower.contains(&"TMC/CM-5 Router"));
        // And the full-custom projections beat everything.
        assert_eq!(routers_slower_than(44.0).len(), 7);
    }
}
