//! The Table 3 implementation catalog.
//!
//! Every row of the paper's Table 3 — METROJR-ORBIT and its cascades,
//! the 0.8µ standard-cell projections, and the 0.8µ full-custom
//! projections — with the published `t_clk`, `t_io`, `t_stg`, `t_bit`,
//! stage counts, and `t_20,32` values. The `expected_*` fields are the
//! printed numbers; the methods compute them from the Table 4 model so
//! tests can assert the reproduction is exact.

use crate::equations::{stages_32_node_2stage, stages_32_node_4stage, LatencyModel, T_WIRE_NS};

/// One row of Table 3: a METRO implementation point.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplementationSpec {
    /// Row label, e.g. `"METROJR-ORBIT"`.
    pub name: &'static str,
    /// Implementation technology, e.g. `"1.2µ Gate Array"`.
    pub technology: &'static str,
    /// Clock period, ns.
    pub t_clk_ns: f64,
    /// I/O delay, ns.
    pub t_io_ns: f64,
    /// Channel width per slice, bits.
    pub width: usize,
    /// Width-cascade factor.
    pub cascade: usize,
    /// Internal pipestages `dp`.
    pub pipestages: usize,
    /// Header words per router `hw`.
    pub header_words: usize,
    /// Network stages (4-stage METROJR-style or 2-stage METRO-8 style).
    pub stages: usize,
    /// The paper's printed `t_stg` cell, ns.
    pub expected_t_stg_ns: f64,
    /// The paper's printed `t_20,32` cell, ns.
    pub expected_t20_32_ns: f64,
}

impl ImplementationSpec {
    /// The Table 4 model for this row.
    #[must_use]
    pub fn model(&self) -> LatencyModel {
        LatencyModel {
            t_clk_ns: self.t_clk_ns,
            t_io_ns: self.t_io_ns,
            t_wire_ns: T_WIRE_NS,
            width: self.width,
            cascade: self.cascade,
            pipestages: self.pipestages,
            header_words: self.header_words,
            stage_digit_bits: match self.stages {
                4 => stages_32_node_4stage(),
                2 => stages_32_node_2stage(),
                other => panic!("Table 3 has no {other}-stage configuration"),
            },
        }
    }

    /// Computed `t_stg`, ns.
    #[must_use]
    pub fn t_stg_ns(&self) -> f64 {
        self.model().t_stg_ns()
    }

    /// Computed `t_bit` (ns per bit).
    #[must_use]
    pub fn t_bit_ns(&self) -> f64 {
        self.model().t_bit_ns()
    }

    /// Computed `t_20,32`, ns.
    #[must_use]
    pub fn t20_32_ns(&self) -> f64 {
        self.model().t20_32_ns()
    }

    /// Bits moved per clock across the (cascaded) channel.
    #[must_use]
    pub fn bits_per_clock(&self) -> usize {
        self.width * self.cascade
    }
}

/// All rows of Table 3, in the paper's order.
#[must_use]
pub fn table3() -> Vec<ImplementationSpec> {
    vec![
        ImplementationSpec {
            name: "METROJR-ORBIT",
            technology: "1.2µ Gate Array",
            t_clk_ns: 25.0,
            t_io_ns: 10.0,
            width: 4,
            cascade: 1,
            pipestages: 1,
            header_words: 0,
            stages: 4,
            expected_t_stg_ns: 50.0,
            expected_t20_32_ns: 1250.0,
        },
        ImplementationSpec {
            name: "METROJR-ORBIT 2-cascade",
            technology: "1.2µ Gate Array",
            t_clk_ns: 25.0,
            t_io_ns: 10.0,
            width: 4,
            cascade: 2,
            pipestages: 1,
            header_words: 0,
            stages: 4,
            expected_t_stg_ns: 50.0,
            expected_t20_32_ns: 750.0,
        },
        ImplementationSpec {
            name: "METROJR-ORBIT 4-cascade",
            technology: "1.2µ Gate Array",
            t_clk_ns: 25.0,
            t_io_ns: 10.0,
            width: 4,
            cascade: 4,
            pipestages: 1,
            header_words: 0,
            stages: 4,
            expected_t_stg_ns: 50.0,
            expected_t20_32_ns: 500.0,
        },
        ImplementationSpec {
            name: "METROJR w=8",
            technology: "1.2µ Gate Array",
            t_clk_ns: 25.0,
            t_io_ns: 10.0,
            width: 8,
            cascade: 1,
            pipestages: 1,
            header_words: 0,
            stages: 4,
            expected_t_stg_ns: 50.0,
            expected_t20_32_ns: 725.0,
        },
        ImplementationSpec {
            name: "METROJR",
            technology: "0.8µ Std. Cell",
            t_clk_ns: 10.0,
            t_io_ns: 5.0,
            width: 4,
            cascade: 1,
            pipestages: 1,
            header_words: 0,
            stages: 4,
            expected_t_stg_ns: 20.0,
            expected_t20_32_ns: 500.0,
        },
        ImplementationSpec {
            name: "METROJR 2-cascade",
            technology: "0.8µ Std. Cell",
            t_clk_ns: 10.0,
            t_io_ns: 5.0,
            width: 4,
            cascade: 2,
            pipestages: 1,
            header_words: 0,
            stages: 4,
            expected_t_stg_ns: 20.0,
            expected_t20_32_ns: 300.0,
        },
        ImplementationSpec {
            name: "METROJR 4-cascade",
            technology: "0.8µ Std. Cell",
            t_clk_ns: 10.0,
            t_io_ns: 5.0,
            width: 4,
            cascade: 4,
            pipestages: 1,
            header_words: 0,
            stages: 4,
            expected_t_stg_ns: 20.0,
            expected_t20_32_ns: 200.0,
        },
        ImplementationSpec {
            name: "METRO i=o=8 w=4",
            technology: "0.8µ Std. Cell",
            t_clk_ns: 10.0,
            t_io_ns: 5.0,
            width: 4,
            cascade: 1,
            pipestages: 1,
            header_words: 0,
            stages: 2,
            expected_t_stg_ns: 20.0,
            expected_t20_32_ns: 460.0,
        },
        ImplementationSpec {
            name: "METROJR",
            technology: "0.8µ Full Custom",
            t_clk_ns: 5.0,
            t_io_ns: 3.0,
            width: 4,
            cascade: 1,
            pipestages: 1,
            header_words: 0,
            stages: 4,
            expected_t_stg_ns: 15.0,
            expected_t20_32_ns: 270.0,
        },
        ImplementationSpec {
            name: "METRO i=o=8 w=4",
            technology: "0.8µ Full Custom",
            t_clk_ns: 5.0,
            t_io_ns: 3.0,
            width: 4,
            cascade: 1,
            pipestages: 1,
            header_words: 0,
            stages: 2,
            expected_t_stg_ns: 15.0,
            expected_t20_32_ns: 240.0,
        },
        ImplementationSpec {
            name: "METROJR dp=2",
            technology: "0.8µ Full Custom",
            t_clk_ns: 2.0,
            t_io_ns: 3.0,
            width: 4,
            cascade: 1,
            pipestages: 2,
            header_words: 0,
            stages: 4,
            expected_t_stg_ns: 10.0,
            expected_t20_32_ns: 124.0,
        },
        ImplementationSpec {
            name: "METROJR hw=1",
            technology: "0.8µ Full Custom",
            t_clk_ns: 2.0,
            t_io_ns: 3.0,
            width: 4,
            cascade: 1,
            pipestages: 1,
            header_words: 1,
            stages: 4,
            expected_t_stg_ns: 8.0,
            expected_t20_32_ns: 120.0,
        },
        ImplementationSpec {
            name: "METROJR hw=1 2-cascade",
            technology: "0.8µ Full Custom",
            t_clk_ns: 2.0,
            t_io_ns: 3.0,
            width: 4,
            cascade: 2,
            pipestages: 1,
            header_words: 1,
            stages: 4,
            expected_t_stg_ns: 8.0,
            expected_t20_32_ns: 80.0,
        },
        ImplementationSpec {
            name: "METROJR hw=1 w=8",
            technology: "0.8µ Full Custom",
            t_clk_ns: 2.0,
            t_io_ns: 3.0,
            width: 8,
            cascade: 1,
            pipestages: 1,
            header_words: 1,
            stages: 4,
            expected_t_stg_ns: 8.0,
            expected_t20_32_ns: 80.0,
        },
        ImplementationSpec {
            name: "METRO i=o=8 hw=2 w=4",
            technology: "0.8µ Full Custom",
            t_clk_ns: 2.0,
            t_io_ns: 3.0,
            width: 4,
            cascade: 1,
            pipestages: 1,
            header_words: 2,
            stages: 2,
            expected_t_stg_ns: 8.0,
            expected_t20_32_ns: 104.0,
        },
        ImplementationSpec {
            name: "METRO i=o=8 hw=2 w=4 4-cascade",
            technology: "0.8µ Full Custom",
            t_clk_ns: 2.0,
            t_io_ns: 3.0,
            width: 4,
            cascade: 4,
            pipestages: 1,
            header_words: 2,
            stages: 2,
            expected_t_stg_ns: 8.0,
            expected_t20_32_ns: 44.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_t20_32_cell_matches_the_paper() {
        for row in table3() {
            assert_eq!(
                row.t20_32_ns(),
                row.expected_t20_32_ns,
                "{} ({})",
                row.name,
                row.technology
            );
        }
    }

    #[test]
    fn every_t_stg_cell_matches_the_paper() {
        for row in table3() {
            assert_eq!(
                row.t_stg_ns(),
                row.expected_t_stg_ns,
                "{} ({})",
                row.name,
                row.technology
            );
        }
    }

    #[test]
    fn table_has_all_sixteen_rows() {
        assert_eq!(table3().len(), 16);
    }

    #[test]
    fn cascading_multiplies_channel_bits() {
        let rows = table3();
        assert_eq!(rows[0].bits_per_clock(), 4);
        assert_eq!(rows[1].bits_per_clock(), 8);
        assert_eq!(rows[2].bits_per_clock(), 16);
    }

    #[test]
    fn cascading_narrows_the_gap_but_header_overhead_grows() {
        // hbits grows with cascade: a 2-cascade does not quite halve
        // the serialization term.
        let rows = table3();
        let base = &rows[0];
        let c2 = &rows[1];
        assert!(c2.t20_32_ns() > base.t20_32_ns() / 2.0);
        assert_eq!(c2.model().header_bits(), 2 * base.model().header_bits());
    }

    #[test]
    fn faster_technology_strictly_helps() {
        let rows = table3();
        // METROJR in the three technologies: 1250 > 500 > 270.
        let orbit = rows[0].t20_32_ns();
        let std_cell = rows[4].t20_32_ns();
        let custom = rows[8].t20_32_ns();
        assert!(orbit > std_cell && std_cell > custom);
    }

    #[test]
    fn pipelined_setup_beats_plain_at_same_clock() {
        let rows = table3();
        // dp=2 (124 ns) vs hw=1 (120 ns) at the same 2 ns clock:
        // connection-setup pipelining wins.
        assert!(rows[11].t20_32_ns() < rows[10].t20_32_ns());
    }
}
