//! ASCII table formatting for the regeneration binaries, and the
//! matching machine-readable (JSON) renderings the results layer
//! writes under `results/`.

use crate::catalog::ImplementationSpec;
use crate::contemporary::ContemporaryRouter;
use metro_harness::Json;
use std::fmt::Write as _;

/// Renders Table 3 in the paper's column layout.
#[must_use]
pub fn render_table3(rows: &[ImplementationSpec]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<32} {:<18} {:>6} {:>6} {:>6} {:>12} {:>6} {:>9}",
        "Architecture Instance",
        "Technology",
        "t_clk",
        "t_io",
        "t_stg",
        "t_bit",
        "stages",
        "t_20,32"
    );
    let _ = writeln!(out, "{}", "-".repeat(104));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<32} {:<18} {:>4} ns {:>4} ns {:>4} ns {:>5} ns/{:<2} b {:>6} {:>6} ns",
            r.name,
            r.technology,
            r.t_clk_ns,
            r.t_io_ns,
            r.t_stg_ns(),
            r.t_clk_ns,
            r.bits_per_clock(),
            r.stages,
            r.t20_32_ns()
        );
    }
    out
}

/// Renders Table 5 in the paper's column layout.
#[must_use]
pub fn render_table5(rows: &[ContemporaryRouter]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>22} {:>12} {:>22} {:>10}",
        "Router", "Latency (ns)", "t_bit", "t_20,32 (ns)", "Reference"
    );
    let _ = writeln!(out, "{}", "-".repeat(90));
    for r in rows {
        let (lo, hi) = r.estimate_t20_32_ns();
        let lat = if r.latency_ns.0 == r.latency_ns.1 {
            format!("{}", r.latency_ns.0)
        } else {
            format!("{} -> {}", r.latency_ns.0, r.latency_ns.1)
        };
        let t2032 = if (lo - hi).abs() < f64::EPSILON {
            format!("{lo:.0}")
        } else {
            format!("{lo:.0} -> {hi:.0}")
        };
        let _ = writeln!(
            out,
            "{:<18} {:>22} {:>6} ns/{:<2}b {:>22} {:>10}",
            r.name, lat, r.t_bit.0, r.t_bit.1, t2032, r.reference
        );
    }
    out
}

/// Renders Table 3 rows as a JSON array: the paper's printed cells next
/// to the model-computed values, one object per row.
#[must_use]
pub fn table3_json(rows: &[ImplementationSpec]) -> Json {
    Json::arr(rows.iter().map(|r| {
        Json::obj([
            ("name", Json::from(r.name)),
            ("technology", Json::from(r.technology)),
            ("t_clk_ns", Json::from(r.t_clk_ns)),
            ("t_io_ns", Json::from(r.t_io_ns)),
            ("width", Json::from(r.width)),
            ("cascade", Json::from(r.cascade)),
            ("stages", Json::from(r.stages)),
            ("t_stg_ns", Json::from(r.t_stg_ns())),
            ("t_stg_ns_paper", Json::from(r.expected_t_stg_ns)),
            ("t20_32_ns", Json::from(r.t20_32_ns())),
            ("t20_32_ns_paper", Json::from(r.expected_t20_32_ns)),
        ])
    }))
}

/// Renders Table 5 rows as a JSON array: published and reconstructed
/// `t_20,32` ranges per contemporary router.
#[must_use]
pub fn table5_json(rows: &[ContemporaryRouter]) -> Json {
    Json::arr(rows.iter().map(|r| {
        let (lo, hi) = r.estimate_t20_32_ns();
        Json::obj([
            ("name", Json::from(r.name)),
            ("latency_ns_min", Json::from(r.latency_ns.0)),
            ("latency_ns_max", Json::from(r.latency_ns.1)),
            ("t_bit_ns", Json::from(r.t_bit.0)),
            ("t_bit_width", Json::from(r.t_bit.1)),
            (
                "published_t20_32_ns_min",
                Json::from(r.published_t20_32_ns.0),
            ),
            (
                "published_t20_32_ns_max",
                Json::from(r.published_t20_32_ns.1),
            ),
            ("reconstructed_t20_32_ns_min", Json::from(lo)),
            ("reconstructed_t20_32_ns_max", Json::from(hi)),
            ("reference", Json::from(r.reference)),
        ])
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::table3;
    use crate::contemporary::table5;

    #[test]
    fn table_json_covers_every_row_and_round_trips() {
        let t3 = table3_json(&table3());
        assert_eq!(t3.as_arr().map(<[Json]>::len), Some(16));
        assert_eq!(Json::parse(&t3.render()).unwrap(), t3);
        let t5 = table5_json(&table5());
        assert_eq!(t5.as_arr().map(<[Json]>::len), Some(7));
        assert_eq!(Json::parse(&t5.render()).unwrap(), t5);
    }

    #[test]
    fn table3_renders_every_row() {
        let s = render_table3(&table3());
        assert_eq!(s.lines().count(), 2 + 16);
        assert!(s.contains("METROJR-ORBIT"));
        assert!(s.contains("1250 ns"));
        assert!(s.contains("44 ns"));
    }

    #[test]
    fn table5_renders_every_row() {
        let s = render_table5(&table5());
        assert_eq!(s.lines().count(), 2 + 7);
        assert!(s.contains("GIGAswitch"));
        assert!(s.contains("J-Machine"));
    }
}
