//! Property-based tests over the Table 4 latency model: monotonicity,
//! unit identities, and the header-bit accounting.

use metro_timing::equations::{LatencyModel, T_WIRE_NS};
use proptest::prelude::*;

fn models() -> impl Strategy<Value = LatencyModel> {
    (
        1u32..=50,  // t_clk (ns, integer for exactness)
        0u32..=20,  // t_io
        2usize..=4, // log-free width choices: 4, 8, 16 via *4
        1usize..=4, // cascade
        1usize..=3, // dp
        0usize..=2, // hw
        proptest::collection::vec(1usize..=3, 1..6),
    )
        .prop_map(|(t_clk, t_io, wq, cascade, dp, hw, digits)| LatencyModel {
            t_clk_ns: f64::from(t_clk),
            t_io_ns: f64::from(t_io),
            t_wire_ns: T_WIRE_NS,
            width: wq * 4,
            cascade,
            pipestages: dp,
            header_words: hw,
            stage_digit_bits: digits,
        })
}

proptest! {
    /// Delivery latency is strictly increasing in message size.
    #[test]
    fn latency_monotone_in_bytes(m in models(), a in 1usize..512, b in 1usize..512) {
        prop_assume!(a < b);
        prop_assert!(m.delivery_ns(a) < m.delivery_ns(b));
    }

    /// A faster clock never hurts (all terms scale with t_clk).
    #[test]
    fn latency_monotone_in_clock(m in models()) {
        let faster = LatencyModel { t_clk_ns: m.t_clk_ns / 2.0, ..m.clone() };
        // vtd may *increase* with a faster clock (more cycles to cover
        // the same wire time), but never enough to lose: t_stg in ns
        // cannot more than marginally exceed the slower clock's.
        prop_assert!(faster.t20_32_ns() <= m.t20_32_ns() + m.t_clk_ns);
    }

    /// vtd covers the wire: vtd · t_clk >= t_io + t_wire, minimally.
    #[test]
    fn vtd_is_the_minimal_cover(m in models()) {
        let vtd = m.vtd() as f64;
        prop_assert!(vtd * m.t_clk_ns >= m.t_io_ns + m.t_wire_ns);
        if vtd >= 1.0 {
            prop_assert!((vtd - 1.0) * m.t_clk_ns < m.t_io_ns + m.t_wire_ns);
        }
    }

    /// Header bits are a whole number of (cascaded) words, and cover
    /// the digit bits in the hw = 0 regime.
    #[test]
    fn hbits_accounting(m in models()) {
        let hbits = m.header_bits();
        prop_assert_eq!(hbits % (m.width * m.cascade), 0);
        if m.header_words == 0 {
            let digit_sum: usize = m.stage_digit_bits.iter().sum();
            prop_assert!(hbits >= digit_sum * m.cascade);
            prop_assert!(hbits < (digit_sum + m.width) * m.cascade);
        } else {
            prop_assert_eq!(hbits, m.header_words * m.width * m.cascade * m.stages());
        }
    }

    /// Cascading never makes delivery slower, and the stage term is
    /// unaffected by it.
    #[test]
    fn cascading_is_monotone(m in models(), bytes in 1usize..256) {
        let wider = LatencyModel { cascade: m.cascade * 2, ..m.clone() };
        prop_assert!(wider.delivery_ns(bytes) <= m.delivery_ns(bytes));
        prop_assert_eq!(wider.t_stg_ns(), m.t_stg_ns());
    }

    /// The t_20,32 decomposition: stage term + serialization term.
    #[test]
    fn t2032_decomposes(m in models()) {
        let stage = m.stages() as f64 * m.t_stg_ns();
        let serial = (160 + m.header_bits()) as f64 * m.t_bit_ns();
        prop_assert!((m.t20_32_ns() - (stage + serial)).abs() < 1e-9);
    }
}
