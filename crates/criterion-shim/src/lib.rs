//! A small, dependency-free benchmarking shim.
//!
//! This workspace builds in offline environments where the real
//! [`criterion`](https://crates.io/crates/criterion) crate cannot be
//! downloaded, so this crate vendors the *subset* of its API the
//! workspace's benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Differences from the real crate, by design: no statistical
//! analysis, no plots, no saved baselines. Each benchmark is warmed
//! up briefly, then timed over enough iterations to fill a fixed
//! measurement window, and the mean time per iteration is printed.

use std::fmt;
use std::time::{Duration, Instant};

const WARM_UP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(700);

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is
    /// fixed by its measurement window.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores throughput
    /// annotations.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<F, I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus a parameter value.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An identifier combining `function_name` and `parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label (strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures inside one benchmark.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, calling it repeatedly until the measurement
    /// window is filled.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up window elapses, measuring
        // roughly how long one iteration takes.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARM_UP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().checked_div(warm_iters as u32);
        let batch = match per_iter {
            Some(d) if d > Duration::ZERO => {
                (MEASURE.as_nanos() / d.as_nanos().max(1)).clamp(1, 1 << 24) as u64
            }
            _ => 1 << 20,
        };

        let start = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = batch;
    }
}

fn run_one<F>(label: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters_done == 0 {
        println!("bench {label:<48} (no iterations)");
        return;
    }
    let nanos = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    let (scaled, unit) = if nanos >= 1_000_000.0 {
        (nanos / 1_000_000.0, "ms")
    } else if nanos >= 1_000.0 {
        (nanos / 1_000.0, "µs")
    } else {
        (nanos, "ns")
    };
    println!(
        "bench {label:<48} {scaled:>10.3} {unit}/iter ({} iters)",
        b.iters_done
    );
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renders_function_and_parameter() {
        let id = BenchmarkId::new("latency", 64);
        assert_eq!(id.into_benchmark_id(), "latency/64");
    }

    #[test]
    fn group_runs_benchmarks_to_completion() {
        let mut c = Criterion::default();
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("noop", |b| {
                ran = true;
                b.iter(|| 1 + 1);
            });
            g.finish();
        }
        assert!(ran);
    }
}
