//! A complete scannable METRO component.
//!
//! [`ScanDevice`] wires a [`TapController`] to the instruction register,
//! the Table 2 configuration register, the boundary register, the
//! bypass bit, and the IDCODE register. Every configuration change
//! reaches the router the way real hardware does: serially, one TDI bit
//! per TCK, committed at Update-DR.

use crate::boundary::BoundaryRegister;
use crate::registers::{decode_config, encode_config, Instruction, IR_BITS};
use crate::tap::{TapController, TapState};
use metro_core::{ArchParams, ConfigError, RouterConfig};
use std::collections::VecDeque;

/// The 32-bit IDCODE of this model: version 0x1, part 0x3270
/// ("METRO"), manufacturer 0x049, LSB 1 as IEEE 1149.1 requires.
pub const METRO_IDCODE: u32 = 0x1327_0093;

/// A scannable METRO component: TAP + registers + the configuration
/// they control.
///
/// # Examples
///
/// ```
/// use metro_core::{ArchParams, PortMode, RouterConfig};
/// use metro_scan::ScanDevice;
///
/// let params = ArchParams::metrojr();
/// let mut dev = ScanDevice::new(params);
/// // Disable forward port 1 through the serial scan interface.
/// let target = RouterConfig::new(&params)
///     .with_forward_port_mode(1, PortMode::DisabledDriven)
///     .build().unwrap();
/// dev.write_config(&target);
/// assert!(!dev.config().forward_enabled(1));
/// ```
#[derive(Debug, Clone)]
pub struct ScanDevice {
    params: ArchParams,
    tap: TapController,
    ir_shift: VecDeque<bool>,
    instruction: Instruction,
    dr_shift: VecDeque<bool>,
    config: RouterConfig,
    boundary: BoundaryRegister,
    pins: Vec<bool>,
    last_update_error: Option<ConfigError>,
}

impl ScanDevice {
    /// Creates a device with the default (all-enabled) configuration.
    #[must_use]
    pub fn new(params: ArchParams) -> Self {
        let pins = (params.forward_ports() + params.backward_ports()) * params.width();
        Self {
            params,
            tap: TapController::new(),
            ir_shift: VecDeque::new(),
            instruction: Instruction::Bypass,
            dr_shift: VecDeque::new(),
            config: RouterConfig::new(&params).build().expect("default config"),
            boundary: BoundaryRegister::new(pins),
            pins: vec![false; pins],
            last_update_error: None,
        }
    }

    /// The architectural parameters.
    #[must_use]
    pub fn params(&self) -> &ArchParams {
        &self.params
    }

    /// The committed configuration (what the router logic sees).
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// The current TAP state.
    #[must_use]
    pub fn tap_state(&self) -> TapState {
        self.tap.state()
    }

    /// The active instruction.
    #[must_use]
    pub fn instruction(&self) -> Instruction {
        self.instruction
    }

    /// The boundary register (EXTEST drive values).
    #[must_use]
    pub fn boundary(&self) -> &BoundaryRegister {
        &self.boundary
    }

    /// Sets the values present on the component's pins, as captured by
    /// SAMPLE/EXTEST.
    ///
    /// # Panics
    ///
    /// Panics if the count differs from the pin count.
    pub fn set_pins(&mut self, pins: &[bool]) {
        assert_eq!(pins.len(), self.pins.len(), "pin count");
        self.pins.copy_from_slice(pins);
    }

    /// The last configuration decode error, if an Update-DR committed
    /// an invalid image (the configuration is left unchanged).
    #[must_use]
    pub fn last_update_error(&self) -> Option<&ConfigError> {
        self.last_update_error.as_ref()
    }

    /// Applies one TCK rising edge with the given TMS/TDI; returns TDO.
    ///
    /// Register actions follow the standard's in-state semantics: a
    /// register captures on the edge that leaves Capture-DR, shifts on
    /// every edge spent in Shift-DR, and commits on the edge that
    /// leaves Update-DR.
    pub fn clock(&mut self, tms: bool, tdi: bool) -> bool {
        let prev = self.tap.state();
        let state = self.tap.step(tms);
        let mut tdo = false;
        match prev {
            TapState::CaptureIr => {
                // Standard: the IR captures the fixed pattern ...01.
                self.ir_shift = to_bits(0b0001, IR_BITS).into();
            }
            TapState::ShiftIr => {
                tdo = self.ir_shift.pop_front().unwrap_or(false);
                self.ir_shift.push_back(tdi);
            }
            TapState::UpdateIr => {
                let code = from_bits(self.ir_shift.make_contiguous());
                self.instruction = Instruction::decode(code as u8);
            }
            TapState::CaptureDr => {
                self.dr_shift = match self.instruction {
                    Instruction::Bypass => VecDeque::from(vec![false]),
                    Instruction::IdCode => to_bits(METRO_IDCODE as usize, 32).into(),
                    Instruction::Config => encode_config(&self.config, &self.params).into(),
                    Instruction::SamplePreload | Instruction::Extest | Instruction::PortTest => {
                        let pins = self.pins.clone();
                        self.boundary.capture(&pins);
                        self.boundary.cells().to_vec().into()
                    }
                };
            }
            TapState::ShiftDr => {
                tdo = self.dr_shift.pop_front().unwrap_or(false);
                self.dr_shift.push_back(tdi);
            }
            TapState::UpdateDr => match self.instruction {
                Instruction::Config => {
                    let bits: Vec<bool> = self.dr_shift.iter().copied().collect();
                    match decode_config(&bits, &self.params) {
                        Ok(cfg) => {
                            self.config = cfg;
                            self.last_update_error = None;
                        }
                        Err(e) => self.last_update_error = Some(e),
                    }
                }
                Instruction::Extest | Instruction::PortTest => {
                    let bits: Vec<bool> = self.dr_shift.iter().copied().collect();
                    if bits.len() == self.boundary.len() {
                        self.boundary.load(&bits);
                    }
                }
                _ => {}
            },
            _ => {}
        }
        if state == TapState::TestLogicReset {
            self.instruction = Instruction::IdCode;
        }
        tdo
    }

    /// High-level helper: drives the full TMS/TDI sequence that loads
    /// `instruction` through the IR.
    pub fn load_instruction(&mut self, instruction: Instruction) {
        // From anywhere: reset, idle, then the IR scan path.
        self.clock(true, false);
        self.clock(true, false);
        self.clock(true, false);
        self.clock(true, false);
        self.clock(true, false); // Test-Logic-Reset
        self.clock(false, false); // Run-Test/Idle
        self.clock(true, false); // Select-DR
        self.clock(true, false); // Select-IR
        self.clock(false, false); // -> Capture-IR
        self.clock(false, false); // leave Capture-IR (capture), -> Shift-IR
        let bits = to_bits(instruction.opcode() as usize, IR_BITS);
        for (k, bit) in bits.iter().enumerate() {
            // Each edge spent in Shift-IR shifts; the last sets TMS=1.
            self.clock(k + 1 == bits.len(), *bit);
        }
        self.clock(true, false); // Exit1 -> Update-IR
        self.clock(false, false); // leave Update-IR (commit), -> Run-Test/Idle
    }

    /// High-level helper: shifts `bits` through the selected data
    /// register and commits them at Update-DR. Returns the bits shifted
    /// out (the captured previous contents).
    pub fn scan_dr(&mut self, bits: &[bool]) -> Vec<bool> {
        self.clock(true, false); // -> Select-DR
        self.clock(false, false); // -> Capture-DR
        self.clock(false, false); // leave Capture-DR (capture), -> Shift-DR
        let mut out = Vec::with_capacity(bits.len());
        for (k, bit) in bits.iter().enumerate() {
            out.push(self.clock(k + 1 == bits.len(), *bit)); // Shift-DR edges
        }
        self.clock(true, false); // Exit1 -> Update-DR
        self.clock(false, false); // leave Update-DR (commit), -> Run-Test/Idle
        out
    }

    /// High-level helper: writes a complete router configuration
    /// through the scan interface (IR ← CONFIG, DR ← image).
    pub fn write_config(&mut self, config: &RouterConfig) {
        self.load_instruction(Instruction::Config);
        let image = encode_config(config, &self.params);
        self.scan_dr(&image);
    }

    /// High-level helper: reads the committed configuration image back
    /// out through the scan interface. The same image is shifted back
    /// in, so the Update-DR at the end of the scan recommits it — a
    /// non-destructive read, the way scan tools refresh live parts.
    pub fn read_config_image(&mut self) -> Vec<bool> {
        self.load_instruction(Instruction::Config);
        let image = encode_config(&self.config, &self.params);
        self.scan_dr(&image)
    }
}

fn to_bits(value: usize, n: usize) -> Vec<bool> {
    // LSB first: the standard shifts least-significant bit first.
    (0..n).map(|k| (value >> k) & 1 == 1).collect()
}

fn from_bits(bits: &[bool]) -> usize {
    bits.iter()
        .enumerate()
        .fold(0, |acc, (k, &b)| acc | (usize::from(b) << k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use metro_core::PortMode;

    #[test]
    fn idcode_is_selected_at_reset() {
        let mut dev = ScanDevice::new(ArchParams::metrojr());
        dev.clock(true, false);
        assert_eq!(dev.instruction(), Instruction::IdCode);
    }

    #[test]
    fn idcode_shifts_out_lsb_first_with_mandatory_one() {
        let mut dev = ScanDevice::new(ArchParams::metrojr());
        dev.load_instruction(Instruction::IdCode);
        let out = dev.scan_dr(&[false; 32]);
        // IEEE 1149.1: IDCODE bit 0 is always 1.
        assert!(out[0]);
        let value = from_bits(&out);
        assert_eq!(value as u32, METRO_IDCODE);
    }

    #[test]
    fn bypass_is_a_single_bit_delay() {
        let mut dev = ScanDevice::new(ArchParams::metrojr());
        dev.load_instruction(Instruction::Bypass);
        let pattern = [true, false, true, true, false];
        let out = dev.scan_dr(&pattern);
        // One-cycle delay: capture loads 0, then our bits follow.
        assert!(!out[0]);
        assert_eq!(&out[1..], &pattern[..4]);
    }

    #[test]
    fn config_written_serially_takes_effect() {
        let params = ArchParams::metrojr();
        let mut dev = ScanDevice::new(params);
        let target = RouterConfig::new(&params)
            .with_dilation(1)
            .with_forward_port_mode(2, PortMode::DisabledTristate)
            .with_fast_reclaim(0, false)
            .with_swallow_all(true)
            .build()
            .unwrap();
        dev.write_config(&target);
        assert_eq!(dev.config(), &target);
        assert!(dev.last_update_error().is_none());
    }

    #[test]
    fn config_readback_matches_written_image() {
        let params = ArchParams::rn1();
        let mut dev = ScanDevice::new(params);
        let target = RouterConfig::new(&params)
            .with_dilation(2)
            .with_forward_turn_delay(3, 5)
            .build()
            .unwrap();
        dev.write_config(&target);
        let image = dev.read_config_image();
        assert_eq!(image, encode_config(&target, &params));
    }

    #[test]
    fn invalid_image_is_rejected_and_config_preserved() {
        let params = ArchParams::metrojr();
        let mut dev = ScanDevice::new(params);
        let before = dev.config().clone();
        // Build an image with an out-of-range turn delay by encoding a
        // valid config then flipping vtd bits high... max_vtd = 7 means
        // any 3-bit value is valid, so corrupt the dilation instead:
        // dilation select encodes log2(d); with max_d = 2 it is 1 bit,
        // so both values are legal. Instead shift a short image: the
        // decode panics are avoided because scan_dr pads — use a wrong
        // length image, which UpdateDr ignores for boundary and decodes
        // as best-effort for config.
        let mut image = encode_config(&before, &params);
        // All-disabled is still *valid*; verify a real commit happens.
        for bit in image.iter_mut() {
            *bit = false;
        }
        dev.load_instruction(Instruction::Config);
        dev.scan_dr(&image);
        assert!(dev.last_update_error().is_none());
        assert!(!dev.config().forward_enabled(0));
    }

    #[test]
    fn extest_loads_boundary_cells() {
        let params = ArchParams::metrojr();
        let mut dev = ScanDevice::new(params);
        dev.load_instruction(Instruction::Extest);
        let pins = (params.forward_ports() + params.backward_ports()) * params.width();
        let pattern: Vec<bool> = (0..pins).map(|k| k % 2 == 0).collect();
        dev.scan_dr(&pattern);
        assert_eq!(dev.boundary().cells(), &pattern[..]);
    }

    #[test]
    fn sample_captures_pins() {
        let params = ArchParams::metrojr();
        let mut dev = ScanDevice::new(params);
        let pins = (params.forward_ports() + params.backward_ports()) * params.width();
        let live: Vec<bool> = (0..pins).map(|k| k % 3 == 0).collect();
        dev.set_pins(&live);
        dev.load_instruction(Instruction::SamplePreload);
        let out = dev.scan_dr(&vec![false; pins]);
        assert_eq!(out, live);
    }
}
