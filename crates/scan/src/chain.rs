//! Board-level scan chains.
//!
//! Multiple METRO components share one TCK/TMS pair, with TDO of each
//! device feeding TDI of the next — the standard IEEE 1149.1 board
//! arrangement. Addressing one device means putting every *other*
//! device in BYPASS (a single-bit register), so the chain's data path
//! is `N - 1` bypass bits plus the target's register. [`ScanChain`]
//! drives the whole arrangement bit-serially, exactly as an external
//! scan master would, and is how a network of METRO routers would
//! actually be configured in a machine.

use crate::device::ScanDevice;
use crate::registers::{encode_config, Instruction, IR_BITS};
use metro_core::RouterConfig;

/// A daisy chain of scannable METRO components.
///
/// Device 0 is nearest the master's TDI; the last device's TDO returns
/// to the master.
#[derive(Debug, Clone)]
pub struct ScanChain {
    devices: Vec<ScanDevice>,
}

impl ScanChain {
    /// Builds a chain from the given devices.
    ///
    /// # Panics
    ///
    /// Panics on an empty chain.
    #[must_use]
    pub fn new(devices: Vec<ScanDevice>) -> Self {
        assert!(
            !devices.is_empty(),
            "a scan chain needs at least one device"
        );
        Self { devices }
    }

    /// Number of devices on the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the chain is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device at position `k`.
    #[must_use]
    pub fn device(&self, k: usize) -> &ScanDevice {
        &self.devices[k]
    }

    /// Mutable access to the device at position `k` (e.g. to hand its
    /// committed configuration to a router).
    pub fn device_mut(&mut self, k: usize) -> &mut ScanDevice {
        &mut self.devices[k]
    }

    /// Applies one TCK to the whole chain: shared TMS, TDI into device
    /// 0, each TDO feeding the next TDI. Returns the chain's TDO.
    pub fn clock(&mut self, tms: bool, tdi: bool) -> bool {
        let mut bit = tdi;
        for dev in &mut self.devices {
            bit = dev.clock(tms, bit);
        }
        bit
    }

    /// Loads an instruction into *every* device: all IR registers shift
    /// as one long register of `N × IR_BITS` bits, farthest device
    /// first.
    pub fn load_instructions(&mut self, instructions: &[Instruction]) {
        assert_eq!(
            instructions.len(),
            self.devices.len(),
            "one instruction per device"
        );
        // Reset and navigate to Shift-IR (shared TMS).
        for _ in 0..5 {
            self.clock(true, false);
        }
        self.clock(false, false); // Run-Test/Idle
        self.clock(true, false); // Select-DR
        self.clock(true, false); // Select-IR
        self.clock(false, false); // -> Capture-IR
        self.clock(false, false); // leave Capture-IR, -> Shift-IR
                                  // The bit stream: the LAST device's opcode leaves the master
                                  // first (it has the longest path to travel), LSB first.
        let total = instructions.len() * IR_BITS;
        let mut sent = 0;
        for inst in instructions.iter().rev() {
            let code = inst.opcode() as usize;
            for k in 0..IR_BITS {
                sent += 1;
                self.clock(sent == total, (code >> k) & 1 == 1);
            }
        }
        self.clock(true, false); // Exit1 -> Update-IR
        self.clock(false, false); // commit, -> Run-Test/Idle
    }

    /// Selects device `target` for data access: the target gets
    /// `instruction`, everyone else BYPASS.
    pub fn select(&mut self, target: usize, instruction: Instruction) {
        let instructions: Vec<Instruction> = (0..self.devices.len())
            .map(|k| {
                if k == target {
                    instruction
                } else {
                    Instruction::Bypass
                }
            })
            .collect();
        self.load_instructions(&instructions);
    }

    /// Shifts `bits` through the chain's data path and commits at
    /// Update-DR. With one device selected and the rest in BYPASS, the
    /// caller must pad for the bypass bits; [`ScanChain::write_config`]
    /// does the arithmetic.
    pub fn scan_dr(&mut self, bits: &[bool]) -> Vec<bool> {
        self.clock(true, false); // Select-DR
        self.clock(false, false); // Capture-DR
        self.clock(false, false); // leave capture, -> Shift-DR
        let mut out = Vec::with_capacity(bits.len());
        for (k, bit) in bits.iter().enumerate() {
            out.push(self.clock(k + 1 == bits.len(), *bit));
        }
        self.clock(true, false); // Exit1 -> Update-DR
        self.clock(false, false); // commit
        out
    }

    /// Writes `config` into device `target` through the chain,
    /// bypassing every other device.
    pub fn write_config(&mut self, target: usize, config: &RouterConfig) {
        self.select(target, Instruction::Config);
        let params = *self.devices[target].params();
        let image = encode_config(config, &params);
        // Devices after the target each contribute one bypass bit the
        // image must traverse before Update-DR; devices before the
        // target delay what we see, not what we send. Append trailing
        // padding so the last image bit reaches the target.
        let downstream = self.devices.len() - 1 - target;
        let _ = downstream; // bypass bits sit *after* the target's TDO
                            // Bits that must pass through the target's register: the image,
                            // preceded by padding equal to the bypass bits *before* the
                            // target (their single-bit registers delay the stream by one
                            // cycle each).
        let upstream = target;
        let mut stream = vec![false; 0];
        stream.extend_from_slice(&image);
        stream.extend(std::iter::repeat_n(false, upstream));
        self.scan_dr(&stream);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metro_core::{ArchParams, PortMode};

    fn chain(n: usize) -> ScanChain {
        ScanChain::new(
            (0..n)
                .map(|_| ScanDevice::new(ArchParams::metrojr()))
                .collect(),
        )
    }

    #[test]
    fn broadcast_instruction_reaches_every_device() {
        let mut c = chain(3);
        c.load_instructions(&[
            Instruction::Config,
            Instruction::IdCode,
            Instruction::Bypass,
        ]);
        assert_eq!(c.device(0).instruction(), Instruction::Config);
        assert_eq!(c.device(1).instruction(), Instruction::IdCode);
        assert_eq!(c.device(2).instruction(), Instruction::Bypass);
    }

    #[test]
    fn select_puts_others_in_bypass() {
        let mut c = chain(4);
        c.select(2, Instruction::Config);
        for k in 0..4 {
            let expect = if k == 2 {
                Instruction::Config
            } else {
                Instruction::Bypass
            };
            assert_eq!(c.device(k).instruction(), expect, "device {k}");
        }
    }

    #[test]
    fn write_config_through_chain_hits_only_the_target() {
        for target in 0..3 {
            let mut c = chain(3);
            let params = ArchParams::metrojr();
            let cfg = RouterConfig::new(&params)
                .with_forward_port_mode(1, PortMode::DisabledDriven)
                .with_dilation(1)
                .build()
                .unwrap();
            c.write_config(target, &cfg);
            for k in 0..3 {
                if k == target {
                    assert_eq!(c.device(k).config(), &cfg, "target {target}");
                } else {
                    assert!(
                        c.device(k).config().forward_enabled(1),
                        "device {k} must be untouched (target {target})"
                    );
                }
            }
        }
    }

    #[test]
    fn sequential_writes_configure_a_whole_stage() {
        let mut c = chain(4);
        let params = ArchParams::metrojr();
        for target in 0..4 {
            let cfg = RouterConfig::new(&params)
                .with_forward_turn_delay(0, target)
                .build()
                .unwrap();
            c.write_config(target, &cfg);
        }
        for k in 0..4 {
            assert_eq!(c.device(k).config().forward_turn_delay(0), k);
        }
    }

    #[test]
    fn single_device_chain_degenerates_to_plain_device() {
        let mut c = chain(1);
        let params = ArchParams::metrojr();
        let cfg = RouterConfig::new(&params).with_dilation(1).build().unwrap();
        c.write_config(0, &cfg);
        assert_eq!(c.device(0).config().dilation(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn empty_chain_panics() {
        let _ = ScanChain::new(Vec::new());
    }
}
