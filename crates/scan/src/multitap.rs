//! The MultiTAP extension.
//!
//! "METRO integrates extensive scan support using an IEEE 1149-1.1990
//! compliant Test Access Port (TAP) extended to support multiple TAPs
//! on each component (MultiTAP). The multiTAP support allows METRO
//! increased tolerance to faults in the scan paths" (paper §5.1,
//! after \[8\]).
//!
//! The component's registers are shared; `sp` independent TAP
//! controllers can each drive them, one holding mastership at a time. A
//! fault in the active TAP's scan path (broken TCK/TMS/TDI wiring, a
//! stuck controller) is survived by failing over to another TAP: the
//! survivor resets to Test-Logic-Reset and takes mastership, and the
//! component remains configurable.

use crate::device::ScanDevice;
use crate::tap::TapState;
use metro_core::{ArchParams, RouterConfig};

/// A METRO component with `sp` redundant TAPs sharing one register
/// file.
#[derive(Debug, Clone)]
pub struct MultiTap {
    device: ScanDevice,
    broken: Vec<bool>,
    active: usize,
}

impl MultiTap {
    /// Creates a component with `sp >= 1` TAPs.
    ///
    /// # Panics
    ///
    /// Panics if `sp == 0`.
    #[must_use]
    pub fn new(params: ArchParams, sp: usize) -> Self {
        assert!(sp >= 1, "at least one TAP is required");
        Self {
            device: ScanDevice::new(params),
            broken: vec![false; sp],
            active: 0,
        }
    }

    /// Number of TAPs.
    #[must_use]
    pub fn taps(&self) -> usize {
        self.broken.len()
    }

    /// The TAP currently holding mastership.
    #[must_use]
    pub fn active_tap(&self) -> usize {
        self.active
    }

    /// Whether TAP `k` is marked broken.
    #[must_use]
    pub fn is_broken(&self, k: usize) -> bool {
        self.broken[k]
    }

    /// The shared register file / device.
    #[must_use]
    pub fn device(&self) -> &ScanDevice {
        &self.device
    }

    /// Mutable access to the shared device *through* TAP `tap`.
    ///
    /// # Errors
    ///
    /// Returns `Err` if `tap` is broken or does not hold mastership —
    /// a faulty or passive TAP cannot affect the component.
    pub fn device_via(&mut self, tap: usize) -> Result<&mut ScanDevice, MultiTapError> {
        if self.broken[tap] {
            return Err(MultiTapError::TapBroken { tap });
        }
        if tap != self.active {
            return Err(MultiTapError::NotMaster {
                tap,
                master: self.active,
            });
        }
        Ok(&mut self.device)
    }

    /// Marks TAP `k` broken (detected by the external scan master
    /// through protocol timeouts). If `k` held mastership, fails over
    /// to the lowest-numbered healthy TAP, resetting the TAP state
    /// machine; the committed configuration is untouched.
    ///
    /// Returns the new master, or `None` if every TAP is now broken.
    pub fn mark_broken(&mut self, k: usize) -> Option<usize> {
        self.broken[k] = true;
        if k == self.active {
            match self.broken.iter().position(|&b| !b) {
                Some(next) => {
                    self.active = next;
                    // The survivor starts from a clean controller state.
                    for _ in 0..5 {
                        self.device.clock(true, false);
                    }
                    debug_assert_eq!(self.device.tap_state(), TapState::TestLogicReset);
                }
                None => return None,
            }
        }
        Some(self.active)
    }

    /// Writes a configuration through the active TAP.
    ///
    /// # Errors
    ///
    /// Returns `Err` if no healthy TAP remains.
    pub fn write_config(&mut self, config: &RouterConfig) -> Result<(), MultiTapError> {
        if self.broken.iter().all(|&b| b) {
            return Err(MultiTapError::AllBroken);
        }
        self.device.write_config(config);
        Ok(())
    }
}

/// Errors from MultiTAP mastership handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiTapError {
    /// The addressed TAP is broken.
    TapBroken {
        /// The addressed TAP.
        tap: usize,
    },
    /// The addressed TAP does not hold mastership.
    NotMaster {
        /// The addressed TAP.
        tap: usize,
        /// The current master.
        master: usize,
    },
    /// Every TAP on the component is broken.
    AllBroken,
}

impl core::fmt::Display for MultiTapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::TapBroken { tap } => write!(f, "tap {tap} is broken"),
            Self::NotMaster { tap, master } => {
                write!(f, "tap {tap} is not master (tap {master} is)")
            }
            Self::AllBroken => write!(f, "all scan paths are broken"),
        }
    }
}

impl std::error::Error for MultiTapError {}

#[cfg(test)]
mod tests {
    use super::*;
    use metro_core::PortMode;

    #[test]
    fn single_tap_component_works() {
        let params = ArchParams::metrojr();
        let mut mt = MultiTap::new(params, 1);
        let cfg = RouterConfig::new(&params).with_dilation(1).build().unwrap();
        mt.write_config(&cfg).unwrap();
        assert_eq!(mt.device().config().dilation(), 1);
    }

    #[test]
    fn failover_preserves_configuration() {
        let params = ArchParams::metrojr();
        let mut mt = MultiTap::new(params, 2);
        let cfg = RouterConfig::new(&params)
            .with_forward_port_mode(3, PortMode::DisabledDriven)
            .build()
            .unwrap();
        mt.write_config(&cfg).unwrap();
        // The active TAP's scan path breaks.
        let new_master = mt.mark_broken(0);
        assert_eq!(new_master, Some(1));
        assert_eq!(mt.active_tap(), 1);
        // Configuration survived, and the component stays writable.
        assert!(!mt.device().config().forward_enabled(3));
        let cfg2 = RouterConfig::new(&params).with_dilation(1).build().unwrap();
        mt.write_config(&cfg2).unwrap();
        assert_eq!(mt.device().config().dilation(), 1);
    }

    #[test]
    fn passive_tap_cannot_drive() {
        let params = ArchParams::metrojr();
        let mut mt = MultiTap::new(params, 2);
        assert!(matches!(
            mt.device_via(1),
            Err(MultiTapError::NotMaster { tap: 1, master: 0 })
        ));
        assert!(mt.device_via(0).is_ok());
    }

    #[test]
    fn broken_tap_cannot_drive_even_if_addressed() {
        let params = ArchParams::metrojr();
        let mut mt = MultiTap::new(params, 3);
        mt.mark_broken(1);
        assert!(matches!(
            mt.device_via(1),
            Err(MultiTapError::TapBroken { tap: 1 })
        ));
        assert_eq!(mt.active_tap(), 0, "breaking a passive tap keeps master");
    }

    #[test]
    fn all_broken_is_terminal() {
        let params = ArchParams::metrojr();
        let mut mt = MultiTap::new(params, 2);
        assert_eq!(mt.mark_broken(0), Some(1));
        assert_eq!(mt.mark_broken(1), None);
        let cfg = RouterConfig::new(&params).build().unwrap();
        assert_eq!(mt.write_config(&cfg), Err(MultiTapError::AllBroken));
    }
}
