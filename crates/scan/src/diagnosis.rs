//! On-line fault localization and masking.
//!
//! METRO's reliability story closes the loop between the routing
//! protocol and the scan subsystem (paper §5.1):
//!
//! 1. At every connection reversal, each router injects its **transit
//!    checksum** — a checksum over the words it received — into the
//!    return stream. The source, knowing what it sent, can compute the
//!    *expected* checksum at every stage and localize where corruption
//!    entered the stream ([`expected_stage_checksums`],
//!    [`localize_corruption`]).
//! 2. The suspect region (a link and its two endpoint ports) is
//!    **disabled** via scan; redundant paths keep the network in
//!    service ([`MaskPlan`]).
//! 3. Boundary-scan vectors are applied across the suspect wire while
//!    the rest of the router carries traffic
//!    ([`crate::boundary::test_wire`]).
//! 4. Confirmed-faulty elements stay disabled (masked); healthy ones
//!    are re-enabled.

use metro_core::header::{consume_digit, HeaderPlan};
use metro_core::StreamChecksum;

/// The per-stage checksums a clean transmission would report: stage `s`
/// checksums every data word it *receives* — the (progressively
/// consumed) header followed by the payload.
///
/// Covers both header regimes: `hw = 0` shifts digits out of the head
/// word per stage (with swallow), `hw >= 1` strips whole words.
#[must_use]
pub fn expected_stage_checksums(
    plan: &HeaderPlan,
    digits: &[usize],
    payload: &[u16],
    w: usize,
    hw: usize,
) -> Vec<u16> {
    let stages = plan.stages();
    let header = plan.pack(digits);
    let mut expected = Vec::with_capacity(stages);
    if hw == 0 {
        // Reconstruct the header image each stage sees.
        let mut words = header.clone();
        let mut head_idx = 0usize;
        for (s, &bits) in plan.stage_digit_bits().iter().enumerate() {
            let mut ck = StreamChecksum::new();
            for &word in &words[head_idx..] {
                ck.absorb_value(word);
            }
            for &v in payload {
                ck.absorb_value(v);
            }
            expected.push(ck.value());
            // Consume this stage's digit for the next stage's view.
            let (_, forwarded) = consume_digit(words[head_idx], bits, w, plan.swallow()[s]);
            match forwarded {
                Some(h) => words[head_idx] = h,
                None => head_idx += 1,
            }
        }
    } else {
        for s in 0..stages {
            let mut ck = StreamChecksum::new();
            for &word in &header[s * hw..] {
                ck.absorb_value(word);
            }
            for &v in payload {
                ck.absorb_value(v);
            }
            expected.push(ck.value());
        }
    }
    expected
}

/// Where corruption entered a path, derived from the transit checksums
/// the routers reported at turn time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionSite {
    /// The first stage whose received-stream checksum mismatched. The
    /// corrupting element lies on the link *into* this stage (or the
    /// downstream datapath of stage `stage - 1`).
    pub stage: usize,
}

/// Compares expected and reported per-stage checksums; `None` when they
/// all match (corruption occurred after the last router, or nowhere).
///
/// Reported checksums arrive nearest-router-first, exactly as the
/// source NIC's delivery record collects them (`metro-sim`'s
/// `DeliveryRecord`).
#[must_use]
pub fn localize_corruption(expected: &[u16], reported: &[u16]) -> Option<CorruptionSite> {
    expected
        .iter()
        .zip(reported)
        .position(|(e, r)| e != r)
        .map(|stage| CorruptionSite { stage })
}

/// The masking action for a localized fault: which ports to disable so
/// the faulty element can no longer corrupt traffic (paper §5.1:
/// "Disabled faults are masked").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskPlan {
    /// Stage of the router driving the suspect link (`stage` of the
    /// corruption site minus one; `None` when the corruption entered on
    /// the injection boundary).
    pub upstream_stage: Option<usize>,
    /// The backward port (on the upstream router) to disable.
    pub upstream_backward_port: Option<usize>,
    /// The stage whose forward port must be disabled.
    pub downstream_stage: usize,
    /// The forward port (on the downstream router) to disable.
    pub downstream_forward_port: usize,
}

/// Builds the mask plan for a corruption site given the path the
/// message took: `ports_taken[s]` is the backward port stage `s`
/// switched the connection through (from the STATUS words), and
/// `fwd_ports[s]` the forward port it entered stage `s` on (from the
/// topology).
#[must_use]
pub fn mask_plan(site: CorruptionSite, ports_taken: &[usize], fwd_ports: &[usize]) -> MaskPlan {
    if site.stage == 0 {
        MaskPlan {
            upstream_stage: None,
            upstream_backward_port: None,
            downstream_stage: 0,
            downstream_forward_port: fwd_ports[0],
        }
    } else {
        MaskPlan {
            upstream_stage: Some(site.stage - 1),
            upstream_backward_port: Some(ports_taken[site.stage - 1]),
            downstream_stage: site.stage,
            downstream_forward_port: fwd_ports[site.stage],
        }
    }
}

/// What one failed attempt's reply evidence says about the fabric —
/// the online entry point the simulator's self-healing layer feeds
/// each piece of delivery evidence through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptDiagnosis {
    /// Transit checksums localized corruption to a link: apply the
    /// mask plan (disable both ends).
    Corruption(MaskPlan),
    /// Every reported transit checksum matched but the delivery itself
    /// failed (corrupt ACK, no ACK, or the reply evidence simply
    /// stopped): the fault sits past the last *reporting* router — on
    /// the delivery boundary when every stage reported, or on the dead
    /// link the trail went cold at. Mask that stage's backward port.
    DeliveryBoundary {
        /// The last stage that reported (the path's final stage when
        /// the evidence is complete).
        stage: usize,
        /// The backward port the connection left that stage on.
        backward_port: usize,
    },
    /// The attempt produced no reversal evidence at all (watchdog
    /// expiry with an empty record): a dead element ate the stream
    /// without replying. Localization needs a boundary-scan sweep.
    NeedsSweep,
    /// The evidence does not implicate a wire (e.g. an ordinary
    /// blocked/reclaimed attempt): take no masking action.
    Inconclusive,
}

/// Classifies one failed attempt from its reply evidence.
///
/// `expected` and `reported` are the per-stage transit checksums
/// (nearest router first, as `expected_stage_checksums` produces and
/// the NIC's delivery record collects); `ports_taken`/`fwd_ports`
/// describe the path actually switched (from the STATUS words and the
/// topology); `delivery_failed` is true when the destination NACKed or
/// never ACKed despite a full reversal.
#[must_use]
pub fn diagnose_attempt(
    expected: &[u16],
    reported: &[u16],
    ports_taken: &[usize],
    fwd_ports: &[usize],
    delivery_failed: bool,
) -> AttemptDiagnosis {
    if reported.is_empty() {
        return AttemptDiagnosis::NeedsSweep;
    }
    if let Some(site) = localize_corruption(expected, reported) {
        return AttemptDiagnosis::Corruption(mask_plan(site, ports_taken, fwd_ports));
    }
    // Clean-as-far-as-reported evidence with a failed delivery: the
    // element after the last reporting router swallowed the stream (a
    // dead inter-stage link kills the reply mid-path; a dead or
    // corrupting delivery link leaves a full, clean report).
    if delivery_failed && !ports_taken.is_empty() {
        return AttemptDiagnosis::DeliveryBoundary {
            stage: ports_taken.len() - 1,
            backward_port: ports_taken[ports_taken.len() - 1],
        };
    }
    AttemptDiagnosis::Inconclusive
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan3() -> HeaderPlan {
        HeaderPlan::new(&[2, 2, 2], 8, 0)
    }

    #[test]
    fn clean_path_reports_no_site() {
        let plan = plan3();
        let digits = plan.digits_for(0b11_01_10);
        let payload = [1u16, 2, 3];
        let expected = expected_stage_checksums(&plan, &digits, &payload, 8, 0);
        assert_eq!(localize_corruption(&expected, &expected), None);
    }

    #[test]
    fn stage_checksums_differ_per_stage() {
        // Each stage sees a differently-consumed header, so the
        // expected values are distinct in general.
        let plan = plan3();
        let digits = plan.digits_for(0b01_10_11);
        let payload = [7u16; 4];
        let e = expected_stage_checksums(&plan, &digits, &payload, 8, 0);
        assert_eq!(e.len(), 3);
        assert_ne!(e[0], e[1]);
    }

    #[test]
    fn corruption_at_stage_k_is_localized() {
        let plan = plan3();
        let digits = plan.digits_for(5);
        let payload = [9u16, 8, 7];
        let expected = expected_stage_checksums(&plan, &digits, &payload, 8, 0);
        for bad_stage in 0..3 {
            let mut reported = expected.clone();
            // Corruption entering at stage k garbles the checksums of
            // stage k and everything downstream.
            for r in reported.iter_mut().skip(bad_stage) {
                *r ^= 0x0101;
            }
            assert_eq!(
                localize_corruption(&expected, &reported),
                Some(CorruptionSite { stage: bad_stage })
            );
        }
    }

    #[test]
    fn expected_checksums_match_router_absorption_hw0() {
        // Cross-check against the actual consumption rules: simulate
        // what each router receives and checksum it directly.
        let plan = plan3();
        let digits = [3usize, 0, 2];
        let payload = [4u16, 5];
        let expected = expected_stage_checksums(&plan, &digits, &payload, 8, 0);

        // Stage 0 receives the packed header + payload.
        let header = plan.pack(&digits);
        let mut ck0 = StreamChecksum::new();
        for &h in &header {
            ck0.absorb_value(h);
        }
        for &v in &payload {
            ck0.absorb_value(v);
        }
        assert_eq!(expected[0], ck0.value());

        // Stage 1 receives the once-consumed header.
        let (_, h1) = consume_digit(header[0], 2, 8, plan.swallow()[0]);
        let mut ck1 = StreamChecksum::new();
        ck1.absorb_value(h1.unwrap());
        for &v in &payload {
            ck1.absorb_value(v);
        }
        assert_eq!(expected[1], ck1.value());
    }

    #[test]
    fn expected_checksums_hw_regime() {
        let plan = HeaderPlan::new(&[2, 2], 8, 1);
        let digits = [1usize, 2];
        let payload = [6u16];
        let e = expected_stage_checksums(&plan, &digits, &payload, 8, 1);
        // Stage 1 receives only its own header word + payload.
        let header = plan.pack(&digits);
        let mut ck1 = StreamChecksum::new();
        ck1.absorb_value(header[1]);
        ck1.absorb_value(6);
        assert_eq!(e[1], ck1.value());
    }

    #[test]
    fn mask_plan_names_both_ends_of_the_link() {
        let site = CorruptionSite { stage: 2 };
        let plan = mask_plan(site, &[3, 5, 1], &[0, 2, 4]);
        assert_eq!(plan.upstream_stage, Some(1));
        assert_eq!(plan.upstream_backward_port, Some(5));
        assert_eq!(plan.downstream_stage, 2);
        assert_eq!(plan.downstream_forward_port, 4);
    }

    #[test]
    fn injection_boundary_corruption_has_no_upstream_router() {
        let site = CorruptionSite { stage: 0 };
        let plan = mask_plan(site, &[3, 5, 1], &[0, 2, 4]);
        assert_eq!(plan.upstream_stage, None);
        assert_eq!(plan.upstream_backward_port, None);
        assert_eq!(plan.downstream_stage, 0);
        assert_eq!(plan.downstream_forward_port, 0);
    }

    #[test]
    fn final_stage_corruption_masks_the_last_link() {
        // Corruption entering at the deepest stage: the suspect link is
        // the one out of stage N-2, and the downstream port is the final
        // stage's own entry port.
        let ports_taken = [7usize, 6, 5, 4];
        let fwd_ports = [0usize, 1, 2, 3];
        let site = CorruptionSite { stage: 3 };
        let plan = mask_plan(site, &ports_taken, &fwd_ports);
        assert_eq!(plan.upstream_stage, Some(2));
        assert_eq!(plan.upstream_backward_port, Some(ports_taken[2]));
        assert_eq!(plan.downstream_stage, 3);
        assert_eq!(plan.downstream_forward_port, fwd_ports[3]);
    }

    #[test]
    fn zero_length_checksum_vectors_localize_nothing() {
        // A zero-stage path (or a record that collected no STATUS
        // words) can never name a corruption site.
        assert_eq!(localize_corruption(&[], &[]), None);
        // Expected side empty: nothing to compare against, even if the
        // reported side carries stray words.
        assert_eq!(localize_corruption(&[], &[0x1234]), None);
        // Reported side empty: zip truncates, no mismatch observable.
        assert_eq!(localize_corruption(&[0x1234], &[]), None);
    }

    #[test]
    fn first_of_multiple_corrupting_stages_wins() {
        // Two independently corrupting elements on one path: every
        // checksum from the first bad stage onward mismatches, and the
        // second fault adds *further* divergence downstream — the
        // localizer must still name the first stage, because masking
        // proceeds one link at a time (the next attempt re-localizes
        // the survivor).
        let plan = plan3();
        let digits = plan.digits_for(0b10_01_11);
        let payload = [2u16, 4, 6, 8];
        let expected = expected_stage_checksums(&plan, &digits, &payload, 8, 0);
        let mut reported = expected.clone();
        for r in reported.iter_mut().skip(1) {
            *r ^= 0x0040; // first corrupting link: into stage 1
        }
        for r in reported.iter_mut().skip(2) {
            *r ^= 0x2000; // second corrupting link: into stage 2
        }
        assert_eq!(
            localize_corruption(&expected, &reported),
            Some(CorruptionSite { stage: 1 })
        );
        // Degenerate double fault: the second corruption exactly undoes
        // the first at stage 2. The first mismatching stage still wins.
        let mut cancel = expected.clone();
        cancel[1] ^= 0x0040;
        assert_eq!(
            localize_corruption(&expected, &cancel),
            Some(CorruptionSite { stage: 1 })
        );
    }

    #[test]
    fn mask_plan_on_dilated_ports_names_the_physical_port() {
        // Dilation 2: each logical direction owns two physical backward
        // ports, and the STATUS word names the *physical* port the
        // connection switched through. ports_taken entries here are
        // physical indices within dilated groups (dir*2 + lane), and
        // the plan must carry them through untouched — masking the
        // sibling lane instead would disable a healthy wire.
        let ports_taken = [3usize, 5, 0]; // dirs 1,2,0 — lanes 1,1,0
        let fwd_ports = [2usize, 6, 1];
        let plan = mask_plan(CorruptionSite { stage: 1 }, &ports_taken, &fwd_ports);
        assert_eq!(plan.upstream_stage, Some(0));
        assert_eq!(
            plan.upstream_backward_port,
            Some(3),
            "lane 1 of direction 1, not the direction's base port"
        );
        assert_eq!(plan.downstream_stage, 1);
        assert_eq!(plan.downstream_forward_port, 6);

        let plan = mask_plan(CorruptionSite { stage: 2 }, &ports_taken, &fwd_ports);
        assert_eq!(plan.upstream_backward_port, Some(5));
        assert_eq!(plan.downstream_forward_port, 1);
    }

    #[test]
    fn diagnose_attempt_classifies_each_evidence_shape() {
        let plan = plan3();
        let digits = plan.digits_for(6);
        let payload = [1u16, 2];
        let expected = expected_stage_checksums(&plan, &digits, &payload, 8, 0);
        let ports = [1usize, 2, 3];
        let fwd = [0usize, 0, 0];

        // Corruption mid-path → a mask plan naming the link.
        let mut bad = expected.clone();
        bad[2] ^= 0x10;
        match diagnose_attempt(&expected, &bad, &ports, &fwd, true) {
            AttemptDiagnosis::Corruption(p) => {
                assert_eq!(p.upstream_backward_port, Some(2));
                assert_eq!(p.downstream_stage, 2);
            }
            d => panic!("expected corruption, got {d:?}"),
        }

        // Clean checksums + failed delivery → the delivery boundary.
        assert_eq!(
            diagnose_attempt(&expected, &expected, &ports, &fwd, true),
            AttemptDiagnosis::DeliveryBoundary {
                stage: 2,
                backward_port: 3
            }
        );

        // Clean evidence that stops mid-path with a failed delivery:
        // a dead link ate the stream right after the last reporting
        // router — mask the port the trail went cold on.
        assert_eq!(
            diagnose_attempt(&expected, &expected[..1], &ports[..1], &fwd, true),
            AttemptDiagnosis::DeliveryBoundary {
                stage: 0,
                backward_port: 1
            }
        );

        // No reversal evidence at all → sweep.
        assert_eq!(
            diagnose_attempt(&expected, &[], &ports, &fwd, false),
            AttemptDiagnosis::NeedsSweep
        );

        // Partial clean evidence without a delivery failure (an
        // ordinary block) → no action.
        assert_eq!(
            diagnose_attempt(&expected, &expected[..1], &ports[..1], &fwd, false),
            AttemptDiagnosis::Inconclusive
        );
    }

    #[test]
    fn all_matching_checksums_localize_nothing() {
        // Every stage agrees — corruption happened after the last
        // router, or not at all. This must hold for arbitrary lengths,
        // including a single-stage path.
        assert_eq!(localize_corruption(&[0xABCD], &[0xABCD]), None);
        let clean = vec![0u16, 0xFFFF, 0x0F0F, 0x55AA, 0x1234];
        assert_eq!(localize_corruption(&clean, &clean.clone()), None);
    }
}
