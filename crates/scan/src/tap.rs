//! The IEEE 1149.1-1990 TAP controller.
//!
//! The standard 16-state state machine, advanced by the TMS value at
//! each rising TCK edge. METRO components expose `sp >= 1` of these
//! (see [`MultiTap`](crate::MultiTap)).

/// The sixteen TAP controller states of IEEE 1149.1 Figure 5-1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TapState {
    TestLogicReset,
    RunTestIdle,
    SelectDrScan,
    CaptureDr,
    ShiftDr,
    Exit1Dr,
    PauseDr,
    Exit2Dr,
    UpdateDr,
    SelectIrScan,
    CaptureIr,
    ShiftIr,
    Exit1Ir,
    PauseIr,
    Exit2Ir,
    UpdateIr,
}

impl TapState {
    /// The successor state for a TMS value at a rising TCK edge.
    #[must_use]
    pub fn next(self, tms: bool) -> TapState {
        use TapState::*;
        match (self, tms) {
            (TestLogicReset, true) => TestLogicReset,
            (TestLogicReset, false) => RunTestIdle,
            (RunTestIdle, true) => SelectDrScan,
            (RunTestIdle, false) => RunTestIdle,
            (SelectDrScan, true) => SelectIrScan,
            (SelectDrScan, false) => CaptureDr,
            (CaptureDr, true) => Exit1Dr,
            (CaptureDr, false) => ShiftDr,
            (ShiftDr, true) => Exit1Dr,
            (ShiftDr, false) => ShiftDr,
            (Exit1Dr, true) => UpdateDr,
            (Exit1Dr, false) => PauseDr,
            (PauseDr, true) => Exit2Dr,
            (PauseDr, false) => PauseDr,
            (Exit2Dr, true) => UpdateDr,
            (Exit2Dr, false) => ShiftDr,
            (UpdateDr, true) => SelectDrScan,
            (UpdateDr, false) => RunTestIdle,
            (SelectIrScan, true) => TestLogicReset,
            (SelectIrScan, false) => CaptureIr,
            (CaptureIr, true) => Exit1Ir,
            (CaptureIr, false) => ShiftIr,
            (ShiftIr, true) => Exit1Ir,
            (ShiftIr, false) => ShiftIr,
            (Exit1Ir, true) => UpdateIr,
            (Exit1Ir, false) => PauseIr,
            (PauseIr, true) => Exit2Ir,
            (PauseIr, false) => PauseIr,
            (Exit2Ir, true) => UpdateIr,
            (Exit2Ir, false) => ShiftIr,
            (UpdateIr, true) => SelectDrScan,
            (UpdateIr, false) => RunTestIdle,
        }
    }
}

/// A TAP controller: the state machine plus TCK edge bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapController {
    state: TapState,
}

impl Default for TapController {
    fn default() -> Self {
        Self::new()
    }
}

impl TapController {
    /// Powers up in Test-Logic-Reset, as the standard requires.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: TapState::TestLogicReset,
        }
    }

    /// The current controller state.
    #[must_use]
    pub fn state(&self) -> TapState {
        self.state
    }

    /// Applies one rising TCK edge with the given TMS; returns the new
    /// state.
    pub fn step(&mut self, tms: bool) -> TapState {
        self.state = self.state.next(tms);
        self.state
    }

    /// Drives the standard reset guarantee: five TMS-high clocks reach
    /// Test-Logic-Reset from any state.
    pub fn reset(&mut self) {
        for _ in 0..5 {
            self.step(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TapState::*;

    #[test]
    fn five_tms_ones_reset_from_any_state() {
        let all = [
            TestLogicReset,
            RunTestIdle,
            SelectDrScan,
            CaptureDr,
            ShiftDr,
            Exit1Dr,
            PauseDr,
            Exit2Dr,
            UpdateDr,
            SelectIrScan,
            CaptureIr,
            ShiftIr,
            Exit1Ir,
            PauseIr,
            Exit2Ir,
            UpdateIr,
        ];
        for start in all {
            let mut tap = TapController { state: start };
            tap.reset();
            assert_eq!(tap.state(), TestLogicReset, "from {start:?}");
        }
    }

    #[test]
    fn canonical_dr_scan_path() {
        let mut tap = TapController::new();
        tap.step(false); // RunTestIdle
        assert_eq!(tap.state(), RunTestIdle);
        tap.step(true); // SelectDrScan
        tap.step(false); // CaptureDr
        assert_eq!(tap.state(), CaptureDr);
        tap.step(false); // ShiftDr
        assert_eq!(tap.state(), ShiftDr);
        tap.step(false); // stay shifting
        assert_eq!(tap.state(), ShiftDr);
        tap.step(true); // Exit1Dr
        tap.step(true); // UpdateDr
        assert_eq!(tap.state(), UpdateDr);
        tap.step(false);
        assert_eq!(tap.state(), RunTestIdle);
    }

    #[test]
    fn canonical_ir_scan_path() {
        let mut tap = TapController::new();
        tap.step(false);
        tap.step(true); // SelectDrScan
        tap.step(true); // SelectIrScan
        assert_eq!(tap.state(), SelectIrScan);
        tap.step(false); // CaptureIr
        tap.step(false); // ShiftIr
        assert_eq!(tap.state(), ShiftIr);
        tap.step(true); // Exit1Ir
        tap.step(false); // PauseIr
        assert_eq!(tap.state(), PauseIr);
        tap.step(true); // Exit2Ir
        tap.step(false); // back to ShiftIr
        assert_eq!(tap.state(), ShiftIr);
        tap.step(true);
        tap.step(true); // UpdateIr
        assert_eq!(tap.state(), UpdateIr);
    }

    #[test]
    fn select_ir_with_tms_high_resets() {
        let mut tap = TapController::new();
        tap.step(false); // idle
        tap.step(true); // SelectDr
        tap.step(true); // SelectIr
        tap.step(true); // TestLogicReset
        assert_eq!(tap.state(), TestLogicReset);
    }

    #[test]
    fn every_state_has_two_successors_within_the_16() {
        use TapState::*;
        let all = [
            TestLogicReset,
            RunTestIdle,
            SelectDrScan,
            CaptureDr,
            ShiftDr,
            Exit1Dr,
            PauseDr,
            Exit2Dr,
            UpdateDr,
            SelectIrScan,
            CaptureIr,
            ShiftIr,
            Exit1Ir,
            PauseIr,
            Exit2Ir,
            UpdateIr,
        ];
        for s in all {
            assert!(all.contains(&s.next(false)));
            assert!(all.contains(&s.next(true)));
        }
    }
}
