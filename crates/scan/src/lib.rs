//! # metro-scan — the METRO scan subsystem
//!
//! "METRO integrates extensive scan support using an IEEE 1149-1.1990
//! compliant Test Access Port (TAP) extended to support multiple TAPs on
//! each component (MultiTAP). … The TAPs provide a convenient mechanism
//! for setting METRO's mostly static configuration options" (paper §5.1).
//!
//! * [`tap`] — the 16-state IEEE 1149.1 TAP controller.
//! * [`registers`] — instruction decode plus the configuration data
//!   register, including the exact Table 2 bit layout
//!   (encode/decode of [`metro_core::RouterConfig`]).
//! * [`device`] — a complete scannable METRO component: TAP +
//!   registers + boundary cells, driven one TCK at a time.
//! * [`multitap`] — redundant TAPs with survivor selection, METRO's
//!   tolerance to faults in the scan paths themselves.
//! * [`boundary`] — boundary-scan cells and port-pair wire tests.
//! * [`diagnosis`] — on-line fault localization from the per-router
//!   transit checksums the routers return at connection reversal, and
//!   the disable→test→mask procedure of §5.1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod boundary;
pub mod chain;
pub mod device;
pub mod diagnosis;
pub mod multitap;
pub mod registers;
pub mod tap;

pub use chain::ScanChain;
pub use device::ScanDevice;
pub use multitap::MultiTap;
pub use registers::{decode_config, encode_config, Instruction};
pub use tap::{TapController, TapState};
