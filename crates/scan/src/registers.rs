//! Instruction decode and the configuration data register.
//!
//! All Table 2 options are "configurable under scan control from a TAP"
//! (paper §5.3). This module defines the exact bit layout of the
//! configuration register and the codec between it and
//! [`metro_core::RouterConfig`]:
//!
//! ```text
//! for each forward port f:  [enable][drive][vtd…][fast_reclaim][swallow]
//! for each backward port b: [enable][drive][vtd…][fast_reclaim]
//! router-wide:              [dilation select…]
//! ```
//!
//! with `vtd` occupying `ceil(log2(max_vtd))` bits and the dilation
//! select `log2(max_d)` bits (at least one), matching the Table 2
//! accounting reproduced by
//! [`RouterConfig::scan_bits`](metro_core::RouterConfig::scan_bits).

use metro_core::{ArchParams, ConfigError, PortMode, RouterConfig};

/// TAP instructions a METRO component implements. Standard opcodes:
/// EXTEST all-zeros, BYPASS all-ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Instruction {
    /// Boundary-scan external test (drive/capture pins): `0b0000`.
    Extest,
    /// Device identification register: `0b0001`.
    IdCode,
    /// Sample pins without disturbing operation: `0b0010`.
    SamplePreload,
    /// METRO configuration register access (Table 2): `0b0100`.
    Config,
    /// Per-port internal test on disabled ports: `0b0101`.
    PortTest,
    /// Single-bit bypass: `0b1111` (and any undefined opcode).
    #[default]
    Bypass,
}

/// Instruction register width.
pub const IR_BITS: usize = 4;

impl Instruction {
    /// The 4-bit opcode.
    #[must_use]
    pub fn opcode(self) -> u8 {
        match self {
            Self::Extest => 0b0000,
            Self::IdCode => 0b0001,
            Self::SamplePreload => 0b0010,
            Self::Config => 0b0100,
            Self::PortTest => 0b0101,
            Self::Bypass => 0b1111,
        }
    }

    /// Decodes an opcode; undefined opcodes select BYPASS, as the
    /// standard requires.
    #[must_use]
    pub fn decode(opcode: u8) -> Self {
        match opcode & 0xF {
            0b0000 => Self::Extest,
            0b0001 => Self::IdCode,
            0b0010 => Self::SamplePreload,
            0b0100 => Self::Config,
            0b0101 => Self::PortTest,
            _ => Self::Bypass,
        }
    }
}

/// Bits used to encode a turn-delay value for the given `max_vtd`.
#[must_use]
pub fn vtd_bits(max_vtd: usize) -> usize {
    if max_vtd <= 1 {
        1
    } else {
        (usize::BITS - (max_vtd - 1).leading_zeros()) as usize
    }
}

/// Bits used for the dilation select.
#[must_use]
pub fn dilation_bits(max_d: usize) -> usize {
    metro_core::params::log2_exact(max_d).max(1)
}

fn push_bits(bits: &mut Vec<bool>, value: usize, n: usize) {
    for k in (0..n).rev() {
        bits.push((value >> k) & 1 == 1);
    }
}

fn pop_bits(bits: &[bool], cursor: &mut usize, n: usize) -> usize {
    let mut v = 0;
    for _ in 0..n {
        v = (v << 1) | usize::from(bits[*cursor]);
        *cursor += 1;
    }
    v
}

fn encode_mode(bits: &mut Vec<bool>, mode: PortMode) {
    match mode {
        PortMode::Enabled => {
            bits.push(true);
            bits.push(true);
        }
        PortMode::DisabledDriven => {
            bits.push(false);
            bits.push(true);
        }
        PortMode::DisabledTristate => {
            bits.push(false);
            bits.push(false);
        }
    }
}

fn decode_mode(bits: &[bool], cursor: &mut usize) -> PortMode {
    let enable = bits[*cursor];
    let drive = bits[*cursor + 1];
    *cursor += 2;
    if enable {
        PortMode::Enabled
    } else if drive {
        PortMode::DisabledDriven
    } else {
        PortMode::DisabledTristate
    }
}

/// Serializes a router configuration into its scan-register bit image.
#[must_use]
pub fn encode_config(config: &RouterConfig, params: &ArchParams) -> Vec<bool> {
    let vb = vtd_bits(params.max_turn_delay());
    let mut bits = Vec::with_capacity(config.scan_bits(params));
    for f in 0..params.forward_ports() {
        encode_mode(&mut bits, config.forward_mode(f));
        push_bits(&mut bits, config.forward_turn_delay(f), vb);
        bits.push(config.fast_reclaim(f));
        bits.push(config.swallow(f));
    }
    for b in 0..params.backward_ports() {
        encode_mode(&mut bits, config.backward_mode(b));
        push_bits(&mut bits, config.backward_turn_delay(b), vb);
        bits.push(config.backward_fast_reclaim(b));
    }
    push_bits(
        &mut bits,
        metro_core::params::log2_exact(config.dilation()),
        dilation_bits(params.max_dilation()),
    );
    debug_assert_eq!(bits.len(), config.scan_bits(params));
    bits
}

/// Deserializes a scan-register bit image into a validated router
/// configuration.
///
/// # Errors
///
/// Returns a [`ConfigError`] if the image encodes an invalid setting
/// (e.g. a turn delay above `max_vtd`).
pub fn decode_config(bits: &[bool], params: &ArchParams) -> Result<RouterConfig, ConfigError> {
    let vb = vtd_bits(params.max_turn_delay());
    let mut cursor = 0usize;
    let mut builder = RouterConfig::new(params);
    for f in 0..params.forward_ports() {
        let mode = decode_mode(bits, &mut cursor);
        let vtd = pop_bits(bits, &mut cursor, vb);
        let fast = bits[cursor];
        let swallow = bits[cursor + 1];
        cursor += 2;
        builder = builder
            .with_forward_port_mode(f, mode)
            .with_forward_turn_delay(f, vtd)
            .with_fast_reclaim(f, fast)
            .with_swallow(f, swallow);
    }
    for b in 0..params.backward_ports() {
        let mode = decode_mode(bits, &mut cursor);
        let vtd = pop_bits(bits, &mut cursor, vb);
        let fast = bits[cursor];
        cursor += 1;
        builder = builder
            .with_backward_port_mode(b, mode)
            .with_backward_turn_delay(b, vtd)
            .with_backward_fast_reclaim(b, fast);
    }
    let dil_log = pop_bits(bits, &mut cursor, dilation_bits(params.max_dilation()));
    builder.with_dilation(1 << dil_log).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip() {
        for i in [
            Instruction::Extest,
            Instruction::IdCode,
            Instruction::SamplePreload,
            Instruction::Config,
            Instruction::PortTest,
            Instruction::Bypass,
        ] {
            assert_eq!(Instruction::decode(i.opcode()), i);
        }
        // Undefined opcodes select bypass.
        assert_eq!(Instruction::decode(0b1010), Instruction::Bypass);
    }

    #[test]
    fn config_image_width_matches_table2_accounting() {
        let p = ArchParams::rn1();
        let cfg = RouterConfig::new(&p).build().unwrap();
        assert_eq!(encode_config(&cfg, &p).len(), cfg.scan_bits(&p));
    }

    #[test]
    fn default_config_roundtrips() {
        let p = ArchParams::rn1();
        let cfg = RouterConfig::new(&p).build().unwrap();
        let bits = encode_config(&cfg, &p);
        assert_eq!(decode_config(&bits, &p).unwrap(), cfg);
    }

    #[test]
    fn rich_config_roundtrips() {
        let p = ArchParams::rn1();
        let cfg = RouterConfig::new(&p)
            .with_dilation(1)
            .with_forward_port_mode(2, PortMode::DisabledTristate)
            .with_backward_port_mode(5, PortMode::DisabledDriven)
            .with_forward_turn_delay(0, 5)
            .with_backward_turn_delay(7, 7)
            .with_fast_reclaim(3, false)
            .with_backward_fast_reclaim(1, false)
            .with_swallow(1, true)
            .build()
            .unwrap();
        let bits = encode_config(&cfg, &p);
        assert_eq!(decode_config(&bits, &p).unwrap(), cfg);
    }

    #[test]
    fn metrojr_config_roundtrips() {
        let p = ArchParams::metrojr();
        let cfg = RouterConfig::new(&p)
            .with_dilation(2)
            .with_swallow_all(true)
            .build()
            .unwrap();
        let bits = encode_config(&cfg, &p);
        assert_eq!(decode_config(&bits, &p).unwrap(), cfg);
    }

    #[test]
    fn vtd_and_dilation_bit_widths() {
        assert_eq!(vtd_bits(7), 3);
        assert_eq!(vtd_bits(1), 1);
        assert_eq!(vtd_bits(0), 1);
        assert_eq!(dilation_bits(2), 1);
        assert_eq!(dilation_bits(4), 2);
        assert_eq!(dilation_bits(1), 1);
    }

    #[test]
    fn flipping_one_bit_changes_the_config() {
        let p = ArchParams::metrojr();
        let cfg = RouterConfig::new(&p).build().unwrap();
        let mut bits = encode_config(&cfg, &p);
        bits[0] = !bits[0]; // forward port 0 enable
        let decoded = decode_config(&bits, &p).unwrap();
        assert_ne!(decoded, cfg);
        assert!(!decoded.forward_enabled(0));
    }
}
