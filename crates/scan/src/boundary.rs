//! Boundary-scan cells and port-pair wire tests.
//!
//! "Once a port is disabled, boundary and internal scan tests can be
//! applied exclusively to the disabled port or ports while the rest of
//! the router functions normally" (paper §5.1). The boundary register
//! holds one cell per port data pin; EXTEST drives patterns out of a
//! disabled backward port and captures them at the attached (also
//! disabled) forward port, exposing stuck-at and bridge faults on the
//! wire between them.

/// A boundary-scan register: one cell per data pin of every port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryRegister {
    cells: Vec<bool>,
}

impl BoundaryRegister {
    /// A register of `pins` cells, all low.
    #[must_use]
    pub fn new(pins: usize) -> Self {
        Self {
            cells: vec![false; pins],
        }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the register has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell values (the pattern driven during EXTEST).
    #[must_use]
    pub fn cells(&self) -> &[bool] {
        &self.cells
    }

    /// Loads the register (UpdateDR commit).
    ///
    /// # Panics
    ///
    /// Panics if the bit count differs from the register size.
    pub fn load(&mut self, bits: &[bool]) {
        assert_eq!(bits.len(), self.cells.len(), "boundary image size");
        self.cells.copy_from_slice(bits);
    }

    /// Captures pin values (CaptureDR).
    ///
    /// # Panics
    ///
    /// Panics if the pin count differs from the register size.
    pub fn capture(&mut self, pins: &[bool]) {
        assert_eq!(pins.len(), self.cells.len(), "pin count");
        self.cells.copy_from_slice(pins);
    }

    /// The `w` cells belonging to port `p` (ports packed contiguously).
    #[must_use]
    pub fn port_cells(&self, p: usize, w: usize) -> &[bool] {
        &self.cells[p * w..(p + 1) * w]
    }
}

/// The standard wire test vectors: walking one, walking zero, and the
/// two alternating patterns — sufficient to expose stuck-at faults,
/// adjacent-pin bridges, and opens on a `w`-bit channel.
#[must_use]
pub fn wire_test_vectors(w: usize) -> Vec<Vec<bool>> {
    let mut v = Vec::with_capacity(2 * w + 2);
    for k in 0..w {
        v.push((0..w).map(|j| j == k).collect()); // walking one
    }
    for k in 0..w {
        v.push((0..w).map(|j| j != k).collect()); // walking zero
    }
    v.push((0..w).map(|j| j % 2 == 0).collect());
    v.push((0..w).map(|j| j % 2 == 1).collect());
    v
}

/// The result of driving test vectors across one wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTestReport {
    /// Vectors driven.
    pub vectors: usize,
    /// Indices of vectors whose capture mismatched.
    pub failing: Vec<usize>,
}

impl WireTestReport {
    /// Whether the wire passed every vector.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failing.is_empty()
    }
}

/// Runs the wire test given a transfer function modeling the physical
/// wire (`drive -> capture`), e.g. a healthy wire is the identity and a
/// stuck-at-0 on bit 3 clears that bit.
pub fn test_wire(w: usize, mut transfer: impl FnMut(&[bool]) -> Vec<bool>) -> WireTestReport {
    let vectors = wire_test_vectors(w);
    let mut failing = Vec::new();
    for (k, v) in vectors.iter().enumerate() {
        if transfer(v) != *v {
            failing.push(k);
        }
    }
    WireTestReport {
        vectors: vectors.len(),
        failing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_wire_passes() {
        let report = test_wire(8, |v| v.to_vec());
        assert!(report.passed());
        assert_eq!(report.vectors, 18);
    }

    #[test]
    fn stuck_at_zero_is_caught() {
        let report = test_wire(8, |v| {
            let mut out = v.to_vec();
            out[3] = false; // stuck-at-0 on bit 3
            out
        });
        assert!(!report.passed());
        // The walking-one on bit 3 must be among the failures.
        assert!(report.failing.contains(&3));
    }

    #[test]
    fn bridge_fault_is_caught() {
        let report = test_wire(4, |v| {
            let mut out = v.to_vec();
            let bridged = v[1] | v[2]; // OR-bridge between pins 1 and 2
            out[1] = bridged;
            out[2] = bridged;
            out
        });
        assert!(!report.passed());
    }

    #[test]
    fn boundary_register_load_and_port_slicing() {
        let mut b = BoundaryRegister::new(16);
        let image: Vec<bool> = (0..16).map(|k| k % 3 == 0).collect();
        b.load(&image);
        assert_eq!(b.cells(), &image[..]);
        assert_eq!(b.port_cells(1, 4), &image[4..8]);
        assert_eq!(b.len(), 16);
        assert!(!b.is_empty());
    }

    #[test]
    fn capture_overwrites_cells() {
        let mut b = BoundaryRegister::new(4);
        b.capture(&[true, false, true, true]);
        assert_eq!(b.cells(), &[true, false, true, true]);
    }

    #[test]
    fn vector_set_covers_all_single_bit_positions() {
        let v = wire_test_vectors(5);
        assert_eq!(v.len(), 12);
        for k in 0..5 {
            assert!(v
                .iter()
                .any(|vec| vec[k] && vec.iter().filter(|&&b| b).count() == 1));
        }
    }
}
