//! Property-based tests over the scan subsystem: TAP state-machine
//! robustness, configuration codec round-trips for arbitrary
//! configurations, and chain addressing.

use metro_core::{ArchParams, PortMode, RouterConfig};
use metro_scan::chain::ScanChain;
use metro_scan::registers::{decode_config, encode_config};
use metro_scan::tap::{TapController, TapState};
use metro_scan::{Instruction, ScanDevice};
use proptest::prelude::*;

fn arb_mode() -> impl Strategy<Value = PortMode> {
    prop_oneof![
        Just(PortMode::Enabled),
        Just(PortMode::DisabledDriven),
        Just(PortMode::DisabledTristate),
    ]
}

fn arb_config(params: ArchParams) -> impl Strategy<Value = RouterConfig> {
    let i = params.forward_ports();
    let o = params.backward_ports();
    (
        proptest::collection::vec(arb_mode(), i),
        proptest::collection::vec(arb_mode(), o),
        proptest::collection::vec(0usize..=params.max_turn_delay(), i),
        proptest::collection::vec(0usize..=params.max_turn_delay(), o),
        proptest::collection::vec(any::<bool>(), i),
        proptest::collection::vec(any::<bool>(), o),
        proptest::collection::vec(any::<bool>(), i),
        0u32..=metro_core::params::log2_exact(params.max_dilation()) as u32,
    )
        .prop_map(move |(fm, bm, fv, bv, fr, br, sw, dil_log)| {
            let mut b = RouterConfig::new(&params).with_dilation(1 << dil_log);
            for (f, m) in fm.into_iter().enumerate() {
                b = b.with_forward_port_mode(f, m);
            }
            for (p, m) in bm.into_iter().enumerate() {
                b = b.with_backward_port_mode(p, m);
            }
            for (f, v) in fv.into_iter().enumerate() {
                b = b.with_forward_turn_delay(f, v);
            }
            for (p, v) in bv.into_iter().enumerate() {
                b = b.with_backward_turn_delay(p, v);
            }
            for (f, r) in fr.into_iter().enumerate() {
                b = b.with_fast_reclaim(f, r);
            }
            for (p, r) in br.into_iter().enumerate() {
                b = b.with_backward_fast_reclaim(p, r);
            }
            for (f, w) in sw.into_iter().enumerate() {
                b = b.with_swallow(f, w);
            }
            b.build().expect("generated config is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any configuration round-trips through the register codec.
    #[test]
    fn any_config_roundtrips(cfg in arb_config(ArchParams::rn1())) {
        let params = ArchParams::rn1();
        let bits = encode_config(&cfg, &params);
        prop_assert_eq!(bits.len(), cfg.scan_bits(&params));
        prop_assert_eq!(decode_config(&bits, &params).unwrap(), cfg);
    }

    /// Any configuration survives a full serial write through a device.
    #[test]
    fn any_config_writes_through_the_tap(cfg in arb_config(ArchParams::metrojr())) {
        let mut dev = ScanDevice::new(ArchParams::metrojr());
        dev.write_config(&cfg);
        prop_assert_eq!(dev.config(), &cfg);
    }

    /// Arbitrary TMS sequences keep the TAP within its 16 states, and
    /// five consecutive ones always reach Test-Logic-Reset.
    #[test]
    fn tap_never_escapes_and_always_resets(tms in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut tap = TapController::new();
        for &bit in &tms {
            tap.step(bit);
        }
        for _ in 0..5 {
            tap.step(true);
        }
        prop_assert_eq!(tap.state(), TapState::TestLogicReset);
    }

    /// Random TMS/TDI streams never corrupt a device's committed
    /// configuration unless an Update-DR actually fires with the CONFIG
    /// instruction loaded — and even then the config stays *valid*.
    #[test]
    fn random_scan_noise_leaves_a_valid_config(
        stream in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..300),
    ) {
        let params = ArchParams::metrojr();
        let mut dev = ScanDevice::new(params);
        for &(tms, tdi) in &stream {
            dev.clock(tms, tdi);
        }
        // Whatever happened, the committed config decodes and re-encodes
        // consistently.
        let bits = encode_config(dev.config(), &params);
        prop_assert_eq!(&decode_config(&bits, &params).unwrap(), dev.config());
    }

    /// Chain addressing: writing device k leaves all others untouched,
    /// for any chain length and target.
    #[test]
    fn chain_write_is_isolated(n in 1usize..5, target_seed in any::<usize>()) {
        let params = ArchParams::metrojr();
        let target = target_seed % n;
        let mut chain = ScanChain::new((0..n).map(|_| ScanDevice::new(params)).collect());
        let cfg = RouterConfig::new(&params)
            .with_dilation(1)
            .with_forward_port_mode(2, PortMode::DisabledTristate)
            .build()
            .unwrap();
        chain.write_config(target, &cfg);
        for k in 0..n {
            if k == target {
                prop_assert_eq!(chain.device(k).config(), &cfg);
            } else {
                prop_assert_eq!(chain.device(k).config().dilation(), 2);
                prop_assert!(chain.device(k).config().forward_enabled(2));
            }
        }
        // And the instruction registers agree with the selection.
        prop_assert_eq!(chain.device(target).instruction(), Instruction::Config);
    }
}
