//! # metro — a reproduction of the METRO router architecture (ISCA 1994)
//!
//! This facade crate re-exports the full METRO workspace:
//!
//! * [`core`] — the routing component itself: dilated crossbars,
//!   pipelined circuit switching, stochastic path selection, connection
//!   reversal, width cascading.
//! * [`topo`] — multipath multistage topologies: multibutterflies and
//!   fat-trees, wiring, path analysis, fault injection.
//! * [`sim`] — a cycle-accurate network simulator with source-responsible
//!   network interfaces and workload generation.
//! * [`timing`] — the analytic latency model behind the paper's
//!   Tables 3–5.
//! * [`scan`] — the IEEE 1149.1 scan subsystem (TAP, MultiTAP, boundary
//!   scan, on-line fault diagnosis).
//! * [`harness`] — the experiment harness: the artifact registry behind
//!   the `metro` CLI, the deterministic parallel point executor, and
//!   the machine-readable results layer (`results/*.json` + manifest).
//!
//! See `README.md` for a guided tour and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use metro_core as core;
pub use metro_harness as harness;
pub use metro_scan as scan;
pub use metro_sim as sim;
pub use metro_timing as timing;
pub use metro_topo as topo;

pub mod doctor;
pub mod scan_harness;
