//! Automated on-line fault localization — the full §5.1 loop, wired
//! across the crates.
//!
//! A failed attempt's delivery record carries, per stage, the STATUS
//! word (which backward port the connection took) and the router's
//! transit checksum. Combined with the topology, the statuses
//! reconstruct the exact router path; combined with the expected
//! per-stage checksums, the transit checksums localize where corruption
//! entered. The result names a concrete [`LinkId`] (or the injection
//! wire), ready for scan-driven masking.

use metro_core::header::HeaderPlan;
use metro_scan::diagnosis::{expected_stage_checksums, localize_corruption};
use metro_sim::message::DeliveryRecord;
use metro_topo::graph::{LinkId, LinkTarget};
use metro_topo::multibutterfly::Multibutterfly;

/// What the diagnosis concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Finding {
    /// Corruption entered on the wire from the source endpoint into
    /// stage 0.
    InjectionWire {
        /// Source endpoint.
        endpoint: usize,
        /// Source output port.
        port: usize,
    },
    /// Corruption entered on (or at the ports of) this inter-stage or
    /// delivery link.
    Link(LinkId),
    /// Every reported transit checksum matched: the corruption (if any)
    /// entered downstream of the last router — on the delivery wire.
    DeliveryWire(LinkId),
}

/// Reconstructs the router path an attempt took from its STATUS words:
/// `routers[s]` is the router index at stage `s`.
///
/// Returns `None` if the record does not cover every stage (e.g. the
/// attempt blocked midway).
#[must_use]
pub fn path_from_record(
    net: &Multibutterfly,
    src: usize,
    out_port: usize,
    record: &DeliveryRecord,
) -> Option<Vec<usize>> {
    if record.statuses.len() < net.stages() {
        return None;
    }
    let mut routers = Vec::with_capacity(net.stages());
    let (mut router, _) = net.injection(src, out_port);
    routers.push(router);
    for s in 0..net.stages() - 1 {
        let taken = record.statuses[s].port()?;
        match net.link(s, router, taken) {
            LinkTarget::Router { router: next, .. } => {
                router = next;
                routers.push(next);
            }
            LinkTarget::Endpoint { .. } => return None,
        }
    }
    Some(routers)
}

/// Localizes a corruption fault from one failed attempt.
///
/// `plan` is the network's header plan, `payload` the payload words the
/// attempt carried (masked to channel width), `out_port` the source
/// output port the attempt used.
///
/// Returns `None` when the record is unusable (incomplete path or no
/// checksums).
#[must_use]
pub fn diagnose(
    net: &Multibutterfly,
    plan: &HeaderPlan,
    src: usize,
    dest: usize,
    out_port: usize,
    payload: &[u16],
    record: &DeliveryRecord,
) -> Option<Finding> {
    let routers = path_from_record(net, src, out_port, record)?;
    if record.checksums.len() < net.stages() {
        return None;
    }
    let digits = net.route_digits(dest);
    let expected = expected_stage_checksums(
        plan,
        &digits,
        payload,
        plan_width(plan),
        plan_hw(plan, net.stages()),
    );
    match localize_corruption(&expected, &record.checksums) {
        Some(site) if site.stage == 0 => Some(Finding::InjectionWire {
            endpoint: src,
            port: out_port,
        }),
        Some(site) => {
            let up_stage = site.stage - 1;
            let up_router = routers[up_stage];
            let taken = record.statuses[up_stage].port()?;
            Some(Finding::Link(LinkId::new(up_stage, up_router, taken)))
        }
        None => {
            // All transit checksums clean: the fault sits past the last
            // router, on the delivery wire the last status names.
            let last = net.stages() - 1;
            let taken = record.statuses[last].port()?;
            Some(Finding::DeliveryWire(LinkId::new(
                last,
                routers[last],
                taken,
            )))
        }
    }
}

// The header plan doesn't expose w/hw directly; recover them from its
// shape. (Width is bits per word; the plan's header_bits/header_words
// ratio gives it. hw is header_words / stages when positive.)
fn plan_width(plan: &HeaderPlan) -> usize {
    if plan.header_words() == 0 {
        8
    } else {
        plan.header_bits() / plan.header_words()
    }
}

fn plan_hw(plan: &HeaderPlan, stages: usize) -> usize {
    // In the hw > 0 regime the plan has exactly hw words per stage and
    // no swallow flags set; in the hw = 0 regime the final stage always
    // swallows.
    if plan.swallow().iter().any(|&s| s) {
        0
    } else {
        plan.header_words().checked_div(stages).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metro_core::StatusWord;
    use metro_topo::multibutterfly::MultibutterflySpec;

    fn fixture() -> (Multibutterfly, HeaderPlan) {
        let net = Multibutterfly::build(&MultibutterflySpec::figure1()).unwrap();
        let plan = net.header_plan(8, 0);
        (net, plan)
    }

    /// Builds the record a clean attempt along the canonical path would
    /// produce, then corrupts checksums from `bad_stage` on.
    fn record_for(
        net: &Multibutterfly,
        plan: &HeaderPlan,
        src: usize,
        dest: usize,
        payload: &[u16],
        bad_stage: Option<usize>,
    ) -> (usize, DeliveryRecord) {
        let digits = net.route_digits(dest);
        let out_port = 0;
        let mut record = DeliveryRecord::default();
        // Walk the first dilated copy at every stage.
        let (mut router, _) = net.injection(src, out_port);
        for (s, &digit) in digits.iter().enumerate().take(net.stages()) {
            let st = net.stage_spec(s);
            let taken = digit * st.dilation;
            record.statuses.push(StatusWord::connected(taken));
            if let LinkTarget::Router { router: next, .. } = net.link(s, router, taken) {
                router = next;
            }
        }
        let mut checksums = expected_stage_checksums(plan, &digits, payload, 8, 0);
        if let Some(bad) = bad_stage {
            for c in checksums.iter_mut().skip(bad) {
                *c ^= 0x0101;
            }
        }
        record.checksums = checksums;
        (out_port, record)
    }

    #[test]
    fn clean_record_blames_the_delivery_wire() {
        let (net, plan) = fixture();
        let payload = [1u16, 2, 3];
        let (port, record) = record_for(&net, &plan, 2, 13, &payload, None);
        let f = diagnose(&net, &plan, 2, 13, port, &payload, &record).unwrap();
        assert!(matches!(f, Finding::DeliveryWire(l) if l.stage == 2));
    }

    #[test]
    fn corruption_at_stage_zero_blames_the_injection_wire() {
        let (net, plan) = fixture();
        let payload = [7u16];
        let (port, record) = record_for(&net, &plan, 4, 11, &payload, Some(0));
        let f = diagnose(&net, &plan, 4, 11, port, &payload, &record).unwrap();
        assert_eq!(
            f,
            Finding::InjectionWire {
                endpoint: 4,
                port: 0
            }
        );
    }

    #[test]
    fn mid_path_corruption_names_the_exact_link() {
        let (net, plan) = fixture();
        let payload = [9u16, 9];
        let (port, record) = record_for(&net, &plan, 0, 15, &payload, Some(2));
        let f = diagnose(&net, &plan, 0, 15, port, &payload, &record).unwrap();
        let Finding::Link(link) = f else {
            panic!("expected a link finding, got {f:?}");
        };
        assert_eq!(link.stage, 1);
        // The named link must be the one the record's stage-1 status took.
        let digits = net.route_digits(15);
        assert_eq!(link.port, digits[1] * net.stage_spec(1).dilation);
    }

    #[test]
    fn incomplete_record_yields_none() {
        let (net, plan) = fixture();
        let mut record = DeliveryRecord::default();
        record.statuses.push(StatusWord::connected(0)); // only one stage
        assert_eq!(diagnose(&net, &plan, 0, 9, 0, &[1], &record), None);
    }

    #[test]
    fn blocked_path_yields_none() {
        let (net, plan) = fixture();
        let mut record = DeliveryRecord::default();
        record.statuses.push(StatusWord::connected(0));
        record.statuses.push(StatusWord::blocked());
        record.statuses.push(StatusWord::blocked());
        record.checksums = vec![0, 0, 0];
        assert_eq!(diagnose(&net, &plan, 0, 9, 0, &[1], &record), None);
    }
}
