//! A scan master for a whole simulated network.
//!
//! Real METRO machines configure their routers through board-level scan
//! chains (one per stage here, a natural physical arrangement). The
//! harness owns a [`ScanChain`] per stage, mirrors every router's
//! committed configuration, and pushes changes **bit-serially through
//! the TAPs** before handing the committed image to the simulated
//! router — so a configuration change exercises the same machinery
//! silicon would: Select-IR, BYPASS addressing, Shift-DR, Update-DR.
//!
//! Combined with [`crate::doctor`], this closes the §5.1 loop entirely
//! in-system: localize a fault from reply streams, then mask it through
//! the scan chains while the rest of the network carries traffic.

use crate::doctor::Finding;
use metro_core::{ArchParams, PortMode, RouterConfig};
use metro_scan::chain::ScanChain;
use metro_scan::ScanDevice;
use metro_sim::NetworkSim;
use metro_topo::graph::LinkTarget;

/// A scan master wired to every router of a [`NetworkSim`].
#[derive(Debug)]
pub struct ScanHarness {
    /// One chain per stage; device `r` on chain `s` shadows router
    /// `(s, r)`.
    chains: Vec<ScanChain>,
    params: Vec<ArchParams>,
}

impl ScanHarness {
    /// Builds the harness, seeding each scan device with the router's
    /// current configuration (through the serial interface, as a scan
    /// master bootstrapping a machine would).
    #[must_use]
    pub fn new(sim: &NetworkSim) -> Self {
        let topo = sim.topology();
        let mut chains = Vec::with_capacity(topo.stages());
        let mut params = Vec::with_capacity(topo.stages());
        for s in 0..topo.stages() {
            let stage_params = *sim.router(s, 0).params();
            params.push(stage_params);
            let devices: Vec<ScanDevice> = (0..topo.routers_in_stage(s))
                .map(|_| ScanDevice::new(stage_params))
                .collect();
            let mut chain = ScanChain::new(devices);
            for r in 0..topo.routers_in_stage(s) {
                chain.write_config(r, sim.router(s, r).config());
            }
            chains.push(chain);
        }
        Self { chains, params }
    }

    /// The architectural parameters of stage `s`'s routers.
    #[must_use]
    pub fn stage_params(&self, s: usize) -> &ArchParams {
        &self.params[s]
    }

    /// The shadowed configuration of router `(s, r)`.
    #[must_use]
    pub fn config(&self, s: usize, r: usize) -> &RouterConfig {
        self.chains[s].device(r).config()
    }

    /// Writes `config` into router `(s, r)`: serially through the
    /// stage's scan chain, then committed to the live router.
    pub fn write_config(
        &mut self,
        sim: &mut NetworkSim,
        s: usize,
        r: usize,
        config: &RouterConfig,
    ) {
        self.chains[s].write_config(r, config);
        sim.router_mut(s, r)
            .apply_config(self.chains[s].device(r).config().clone());
    }

    /// Disables one backward port of router `(s, r)` (keeping every
    /// other option as committed), through the chain.
    pub fn disable_backward_port(&mut self, sim: &mut NetworkSim, s: usize, r: usize, b: usize) {
        let cfg = self.rebuild(s, r, |builder| {
            builder.with_backward_port_mode(b, PortMode::DisabledDriven)
        });
        self.write_config(sim, s, r, &cfg);
    }

    /// Disables one forward port of router `(s, r)` through the chain.
    pub fn disable_forward_port(&mut self, sim: &mut NetworkSim, s: usize, r: usize, f: usize) {
        let cfg = self.rebuild(s, r, |builder| {
            builder.with_forward_port_mode(f, PortMode::DisabledDriven)
        });
        self.write_config(sim, s, r, &cfg);
    }

    /// Masks a [`Finding`] from the doctor: disables the faulty link's
    /// driving backward port and fed forward port (or the endpoint-side
    /// elements for boundary findings). Returns `true` if any port was
    /// disabled.
    pub fn mask(&mut self, sim: &mut NetworkSim, finding: Finding) -> bool {
        match finding {
            Finding::Link(link) | Finding::DeliveryWire(link) => {
                match sim.topology().link(link.stage, link.router, link.port) {
                    LinkTarget::Router { router, port } => {
                        self.disable_backward_port(sim, link.stage, link.router, link.port);
                        self.disable_forward_port(sim, link.stage + 1, router, port);
                        true
                    }
                    LinkTarget::Endpoint { .. } => {
                        // Delivery wire: only the router-side port can be
                        // disabled; the endpoint keeps its other input.
                        self.disable_backward_port(sim, link.stage, link.router, link.port);
                        true
                    }
                }
            }
            Finding::InjectionWire { .. } => {
                // The endpoint NIC avoids the port on retry; the
                // router-side forward port could also be disabled, but
                // which stage-0 port requires the injection map — left
                // to the caller's policy.
                false
            }
        }
    }

    fn rebuild(
        &self,
        s: usize,
        r: usize,
        extra: impl FnOnce(metro_core::ConfigBuilder) -> metro_core::ConfigBuilder,
    ) -> RouterConfig {
        let params = &self.params[s];
        let live = self.config(s, r);
        let mut b = RouterConfig::new(params).with_dilation(live.dilation());
        for f in 0..params.forward_ports() {
            b = b
                .with_forward_port_mode(f, live.forward_mode(f))
                .with_forward_turn_delay(f, live.forward_turn_delay(f))
                .with_fast_reclaim(f, live.fast_reclaim(f))
                .with_swallow(f, live.swallow(f));
        }
        for p in 0..params.backward_ports() {
            b = b
                .with_backward_port_mode(p, live.backward_mode(p))
                .with_backward_turn_delay(p, live.backward_turn_delay(p))
                .with_backward_fast_reclaim(p, live.backward_fast_reclaim(p));
        }
        extra(b).build().expect("rebuilt config is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metro_sim::SimConfig;
    use metro_topo::MultibutterflySpec;

    fn sim() -> NetworkSim {
        NetworkSim::new(&MultibutterflySpec::figure1(), &SimConfig::default()).unwrap()
    }

    #[test]
    fn harness_mirrors_live_configs_at_bootstrap() {
        let sim = sim();
        let h = ScanHarness::new(&sim);
        for s in 0..3 {
            for r in 0..sim.topology().routers_in_stage(s) {
                assert_eq!(h.config(s, r), sim.router(s, r).config(), "r{s}.{r}");
            }
        }
    }

    #[test]
    fn serial_disable_reaches_the_live_router() {
        let mut sim = sim();
        let mut h = ScanHarness::new(&sim);
        h.disable_backward_port(&mut sim, 1, 3, 2);
        assert!(!sim.router(1, 3).config().backward_enabled(2));
        // Everything else preserved (swallow flags, dilation).
        assert_eq!(sim.router(1, 3).config().dilation(), 2);
        // Neighbors untouched.
        assert!(sim.router(1, 2).config().backward_enabled(2));
        // Network still routes.
        let o = sim.send_and_wait(0, 9, &[1, 2], 20_000);
        assert!(o.is_some());
    }

    #[test]
    fn mask_disables_both_ends_of_a_link() {
        let mut sim = sim();
        let mut h = ScanHarness::new(&sim);
        let link = metro_topo::graph::LinkId::new(0, 2, 1);
        let LinkTarget::Router { router, port } = sim.topology().link(0, 2, 1) else {
            panic!("stage-0 links are inter-stage");
        };
        assert!(h.mask(&mut sim, Finding::Link(link)));
        assert!(!sim.router(0, 2).config().backward_enabled(1));
        assert!(!sim.router(1, router).config().forward_enabled(port));
        // Traffic still flows around the masked link.
        for src in 0..16 {
            assert!(sim
                .send_and_wait(src, (src + 5) % 16, &[9], 20_000)
                .is_some());
        }
    }

    #[test]
    fn injection_wire_findings_are_left_to_the_nic() {
        let mut sim = sim();
        let mut h = ScanHarness::new(&sim);
        assert!(!h.mask(
            &mut sim,
            Finding::InjectionWire {
                endpoint: 3,
                port: 1
            }
        ));
    }
}
